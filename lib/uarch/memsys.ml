(** The simulated memory system: L1I / L1D / L2 tag hierarchy, MSHRs, an
    in-order L1D controller queue, the D-TLB, and the defense-specific
    structures (InvisiSpec's speculative buffer, SpecLFB's line-fill buffer,
    CleanupSpec's undo metadata and cleanup engine).

    Only tags and timing are modeled; data lives in the architectural memory
    image (see {!Cache}).  The in-order controller queue is load-bearing for
    the UV2 speculative-interference leak: a request at the head that cannot
    obtain an MSHR blocks everything behind it. *)

open Amulet_isa

type req_kind = Demand_load | Spec_load | Store_install | Expose | Prime | Prefetch

let kind_to_event = function
  | Demand_load -> Event.Demand_load
  | Spec_load -> Event.Spec_load
  | Store_install -> Event.Store
  | Expose -> Event.Expose
  | Prime -> Event.Prime
  | Prefetch -> Event.Prefetch

type request = {
  rob_id : int;  (** -1 for background traffic *)
  pc : int;
  kind : req_kind;
  line : int;
  spec : bool;  (** issued under speculation *)
  split_second : bool;  (** second half of a line-crossing access *)
  mutable cancelled : bool;
}

type queue_item = Req of request | Cleanup_op of { line : int; restore : int option }

type mshr = {
  m_line : int;
  m_ready_at : int;
  mutable m_waiters : request list;
}

(* CleanupSpec undo metadata for one cache request. *)
type cleanup_meta = {
  mc_line : int;
  mc_cleanable : bool;
  mc_reason : string;  (** why not cleanable, for the debug log *)
  mutable mc_installed : bool;
  mutable mc_victim : int option;
  mutable mc_squashed : bool;
}

type t = {
  cfg : Config.t;
  log : Event.log;
  l1d : Cache.t;
  l1i : Cache.t;
  l2 : Cache.t;
  tlb : Tlb.t;
  queue : queue_item Queue.t;
  ghost_queue : queue_item Queue.t;
      (** GhostMinion: speculative requests travel on their own queue so
          their head-of-line blocking cannot delay older accesses *)
  mutable busy_until : int;  (** cleanup engine occupancy *)
  mutable mshrs : mshr list;
  mutable ghost_mshrs : mshr list;
      (** GhostMinion: dedicated MSHRs for speculative fills *)
  mutable next_mshr_ready : int;
      (** min [m_ready_at] over both MSHR pools ([max_int] when empty), so
          an idle tick is a single comparison instead of two list walks *)
  mutable responses : (int * int * int) list;  (** (due, rob_id, line) *)
  mutable next_resp_due : int;  (** min due cycle ([max_int] when empty) *)
  mutable spec_buffer : (int * int * bool ref) list;  (** (rob, line, ready) *)
  mutable lfb : (int * int * bool ref) list;
  cleanup_meta : (int, cleanup_meta list ref) Hashtbl.t;  (** by rob id *)
  mutable access_order : (int * int) list;  (** (pc, addr), newest first *)
  mutable last_stalled_line : int;  (** event-dedup for MSHR stalls *)
  m_mshr_allocs : Amulet_obs.Obs.counter;
  m_mshr_full_stalls : Amulet_obs.Obs.counter;
}

let create ?(metrics = Amulet_obs.Obs.noop) (cfg : Config.t) (log : Event.log)
    =
  {
    cfg;
    log;
    l1d =
      Cache.create ~metrics ~name:"L1D" ~sets:cfg.l1d_sets ~ways:cfg.l1d_ways
        ~line_bytes:cfg.line_bytes ();
    l1i =
      Cache.create ~metrics ~name:"L1I" ~sets:cfg.l1i_sets ~ways:cfg.l1i_ways
        ~line_bytes:cfg.line_bytes ();
    l2 =
      Cache.create ~metrics ~name:"L2" ~sets:cfg.l2_sets ~ways:cfg.l2_ways
        ~line_bytes:cfg.line_bytes ();
    tlb = Tlb.create ~metrics ~entries:cfg.tlb_entries ();
    queue = Queue.create ();
    ghost_queue = Queue.create ();
    busy_until = 0;
    mshrs = [];
    ghost_mshrs = [];
    next_mshr_ready = max_int;
    responses = [];
    next_resp_due = max_int;
    spec_buffer = [];
    lfb = [];
    cleanup_meta = Hashtbl.create 64;
    access_order = [];
    last_stalled_line = -1;
    m_mshr_allocs = Amulet_obs.Obs.counter metrics "uarch.mshr.allocs";
    m_mshr_full_stalls =
      Amulet_obs.Obs.counter metrics "uarch.mshr.full_stalls";
  }

let line_of t addr = Cache.line_of t.l1d addr

(** Lines touched by an access of [width] bytes at [addr] (two when the
    access crosses a line boundary). *)
let lines_of_access t ~addr ~width =
  let first = line_of t addr in
  let last = line_of t (addr + Width.bytes width - 1) in
  if first = last then [ first ] else [ first; last ]

(* ------------------------------------------------------------------ *)
(* Request submission                                                  *)
(* ------------------------------------------------------------------ *)

let record_access t ~pc ~addr = t.access_order <- (pc, addr) :: t.access_order

let enqueue t req =
  match t.cfg.defense, req.kind with
  | Config.Ghostminion, Spec_load -> Queue.add (Req req) t.ghost_queue
  | _ -> Queue.add (Req req) t.queue

(** Submit the cache request(s) for a data access.  Returns the number of
    line requests issued (responses to wait for). *)
let request_access t ~now ~rob_id ~pc ~addr ~width ~kind ~spec =
  let first = line_of t addr in
  let last = line_of t (addr + Width.bytes width - 1) in
  (match kind with
  | Demand_load | Spec_load | Store_install -> record_access t ~pc ~addr
  | Expose | Prime | Prefetch -> ());
  let submit line split_second =
    if t.log.Event.enabled then
      Event.record t.log
        (Event.Mem_access
           { cycle = now; pc; kind = kind_to_event kind; addr; line; spec });
    enqueue t { rob_id; pc; kind; line; spec; split_second; cancelled = false }
  in
  if first = last then begin
    (* the common case: no intermediate line list *)
    submit first false;
    1
  end
  else begin
    if t.log.Event.enabled then
      Event.record t.log
        (Event.Split_access { cycle = now; pc; line1 = first; line2 = last });
    submit first false;
    submit last true;
    2
  end

(** Submit an expose / LFB-promote request for one line. *)
let request_expose t ~now ~rob_id ~line =
  if t.log.Event.enabled then
    Event.record t.log (Event.Expose_issued { cycle = now; line });
  enqueue t
    { rob_id; pc = 0; kind = Expose; line; spec = false; split_second = false; cancelled = false }

(* ------------------------------------------------------------------ *)
(* CleanupSpec metadata                                                *)
(* ------------------------------------------------------------------ *)

let cleanupspec_cfg t =
  match t.cfg.defense with Config.Cleanupspec c -> Some c | _ -> None

let add_meta t rob_id meta =
  let cell =
    match Hashtbl.find_opt t.cleanup_meta rob_id with
    | Some c -> c
    | None ->
        let c = ref [] in
        Hashtbl.add t.cleanup_meta rob_id c;
        c
  in
  cell := meta :: !cell

(* Record undo metadata when a speculative CleanupSpec request misses.  The
   UV3 and UV4 implementation bugs are reproduced here: speculative stores
   and the second halves of split requests get non-cleanable metadata unless
   the corresponding patch flag is set. *)
let record_cleanup_meta t (req : request) =
  match cleanupspec_cfg t with
  | None -> ()
  | Some _ when not req.spec -> ()
  | Some cs ->
      let cleanable, reason =
        if req.split_second && not cs.cs_patched_split_cleanup then
          false, "split request not tracked"
        else
          match req.kind with
          | Store_install when not cs.cs_patched_store_cleanup ->
              false, "writeCallback missing metadata"
          | Demand_load | Spec_load | Store_install -> true, ""
          | Expose | Prime | Prefetch -> false, "background"
      in
      add_meta t req.rob_id
        {
          mc_line = req.line;
          mc_cleanable = cleanable;
          mc_reason = reason;
          mc_installed = false;
          mc_victim = None;
          mc_squashed = false;
        }

let enqueue_cleanup t ~line ~restore =
  Queue.add (Cleanup_op { line; restore }) t.queue

(** Squash notification for CleanupSpec: schedule cleanups for installed
    speculative state of [rob_id]; flag the unclean leftovers (UV3/UV4). *)
let squash_cleanup t ~now ~rob_id =
  match Hashtbl.find_opt t.cleanup_meta rob_id with
  | None -> ()
  | Some cell ->
      List.iter
        (fun m ->
          if not m.mc_cleanable then begin
            if t.log.Event.enabled then
              Event.record t.log
                (Event.Cleanup_missing
                   { cycle = now; line = m.mc_line; reason = m.mc_reason })
          end
          else if m.mc_installed then
            enqueue_cleanup t ~line:m.mc_line ~restore:m.mc_victim
          else m.mc_squashed <- true)
        !cell;
      (* keep entries with pending fills (they self-clean at fill time) *)
      cell := List.filter (fun m -> m.mc_cleanable && not m.mc_installed) !cell

(* ------------------------------------------------------------------ *)
(* Squash cancellation                                                 *)
(* ------------------------------------------------------------------ *)

(** Cancel the in-flight work of a squashed instruction.  Requests already
    holding an MSHR continue (and, for baseline-style kinds, still install —
    this is precisely the Spectre leak); queued requests are dropped;
    speculative-buffer and LFB entries are discarded. *)
let cancel t ~now ~rob_id =
  List.iter
    (fun q ->
      Queue.iter
        (function
          | Req r when r.rob_id = rob_id -> r.cancelled <- true
          | Req _ | Cleanup_op _ -> ())
        q)
    [ t.queue; t.ghost_queue ];
  let cancel_waiters m =
    List.iter (fun r -> if r.rob_id = rob_id then r.cancelled <- true) m.m_waiters
  in
  List.iter cancel_waiters t.mshrs;
  List.iter cancel_waiters t.ghost_mshrs;
  t.spec_buffer <- List.filter (fun (rob, _, _) -> rob <> rob_id) t.spec_buffer;
  t.lfb <- List.filter (fun (rob, _, _) -> rob <> rob_id) t.lfb;
  squash_cleanup t ~now ~rob_id

(* ------------------------------------------------------------------ *)
(* Fills and the controller queue                                      *)
(* ------------------------------------------------------------------ *)

let install_l1d t ~now line =
  (match Cache.install t.l1d line with
  | None -> ()
  | Some victim ->
      if t.log.Event.enabled then
        Event.record t.log
          (Event.Cache_evict { cycle = now; cache = "L1D"; line = victim }));
  if t.log.Event.enabled then
    Event.record t.log (Event.Cache_install { cycle = now; cache = "L1D"; line })

(* Complete one MSHR: install (per waiter kinds) and schedule responses. *)
let complete_mshr t ~now (m : mshr) =
  let installing_kind = function
    | Demand_load | Store_install | Prime | Expose | Prefetch -> true
    | Spec_load -> false
  in
  let victim_before = Cache.victim_of t.l1d m.m_line in
  let installs = List.exists (fun r -> installing_kind r.kind) m.m_waiters in
  if installs then begin
    let was_present = Cache.probe t.l1d m.m_line in
    install_l1d t ~now m.m_line;
    ignore (Cache.install t.l2 m.m_line);
    (* update CleanupSpec metadata of every waiter on this line *)
    List.iter
      (fun r ->
        match Hashtbl.find_opt t.cleanup_meta r.rob_id with
        | None -> ()
        | Some cell ->
            List.iter
              (fun meta ->
                if meta.mc_line = m.m_line && not meta.mc_installed then begin
                  meta.mc_installed <- true;
                  meta.mc_victim <- (if was_present then None else victim_before);
                  (* squashed while the fill was in flight: undo immediately *)
                  if meta.mc_squashed then
                    enqueue_cleanup t ~line:meta.mc_line ~restore:meta.mc_victim
                end)
              !cell)
      m.m_waiters
  end;
  (* speculative-only fills deliver data to the spec buffer / LFB without
     touching L1 or L2: InvisiSpec's loads are invisible to the whole cache
     hierarchy, and SpecLFB holds unsafe lines outside the caches *)
  List.iter
    (fun (r : request) ->
      (match r.kind with
      | Spec_load -> (
          match t.cfg.defense with
          | Config.Invisispec _ | Config.Ghostminion ->
              List.iter
                (fun (rob, line, ready) ->
                  if rob = r.rob_id && line = m.m_line && not !ready then begin
                    ready := true;
                    if t.log.Event.enabled then
                      Event.record t.log (Event.Spec_buffer_fill { cycle = now; line })
                  end)
                t.spec_buffer
          | Config.Speclfb _ ->
              List.iter
                (fun (rob, line, ready) ->
                  if rob = r.rob_id && line = m.m_line then ready := true)
                t.lfb
          | Config.Baseline | Config.Cleanupspec _ | Config.Stt _
          | Config.Delay_on_miss ->
              ())
      | Demand_load | Store_install | Expose | Prime | Prefetch -> ());
      if not r.cancelled && r.rob_id >= 0 then begin
        t.responses <- (now, r.rob_id, m.m_line) :: t.responses;
        if now < t.next_resp_due then t.next_resp_due <- now
      end)
    m.m_waiters

let respond_at t ~due ~rob_id ~line =
  if rob_id >= 0 then begin
    t.responses <- (due, rob_id, line) :: t.responses;
    if due < t.next_resp_due then t.next_resp_due <- due
  end

(* InvisiSpec spec-buffer lookup: a ready entry for this line (any owner). *)
let spec_buffer_hit t line =
  List.exists (fun (_, l, ready) -> l = line && !ready) t.spec_buffer

let lfb_hit t line = List.exists (fun (_, l, ready) -> l = line && !ready) t.lfb

(* GhostMinion gives speculative fills their own MSHR pool. *)
let uses_ghost_pool t (req : request) =
  t.cfg.defense = Config.Ghostminion && req.kind = Spec_load

let mshr_for t (req : request) =
  let pool = if uses_ghost_pool t req then t.ghost_mshrs else t.mshrs in
  List.find_opt (fun m -> m.m_line = req.line) pool

let free_mshr_available t (req : request) =
  if uses_ghost_pool t req then List.length t.ghost_mshrs < t.cfg.mshrs
  else List.length t.mshrs < t.cfg.mshrs

(* Allocate an MSHR for [req]; L2 probe determines the fill latency.
   Exposes carry their data from the speculative buffer, so they complete in
   an L1-L2 handshake rather than a memory fetch — but they still occupy an
   MSHR, which is what the UV2 interference leak contends on. *)
let allocate_mshr t ~now (req : request) =
  let l2_hit = Cache.touch t.l2 req.line in
  let latency =
    if req.kind = Expose then t.cfg.l2_latency
    else if l2_hit then t.cfg.l2_latency
    else t.cfg.mem_latency
  in
  let m = { m_line = req.line; m_ready_at = now + latency; m_waiters = [ req ] } in
  if uses_ghost_pool t req then t.ghost_mshrs <- m :: t.ghost_mshrs
  else t.mshrs <- m :: t.mshrs;
  if m.m_ready_at < t.next_mshr_ready then t.next_mshr_ready <- m.m_ready_at;
  Amulet_obs.Obs.incr t.m_mshr_allocs;
  if t.log.Event.enabled then
    Event.record t.log (Event.Mshr_alloc { cycle = now; line = req.line })

(* Process one queue head item.  Returns [`Done] if it was consumed,
   [`Blocked] if the queue must stall (head-of-line blocking). *)
let process_head t ~now (item : queue_item) =
  match item with
  | Cleanup_op { line; restore } ->
      t.busy_until <- now + t.cfg.cleanup_latency;
      ignore (Cache.invalidate t.l1d line);
      if t.log.Event.enabled then
        Event.record t.log (Event.Cleanup { cycle = now; line; restored = restore });
      (match restore with
      | None -> ()
      | Some victim -> ignore (Cache.install t.l1d victim));
      `Done
  | Req r when r.cancelled -> `Done
  | Req r -> (
      (* next-line prefetcher (extension study): every load, speculative or
         not, trains a prefetch of the following line; prefetches install
         unconditionally, outside any defense's protection *)
      (match r.kind with
      | (Demand_load | Spec_load) when t.cfg.Config.nl_prefetcher ->
          let next = r.line + t.cfg.Config.line_bytes in
          if not (Cache.probe t.l1d next) then begin
            Event.record t.log
              (Event.Mem_access
                 {
                   cycle = now;
                   pc = r.pc;
                   kind = Event.Prefetch;
                   addr = next;
                   line = next;
                   spec = r.spec;
                 });
            Queue.add
              (Req
                 {
                   rob_id = -1;
                   pc = r.pc;
                   kind = Prefetch;
                   line = next;
                   spec = r.spec;
                   split_second = false;
                   cancelled = false;
                 })
              t.queue
          end
      | _ -> ());
      let l1_hit =
        match r.kind with
        | Spec_load -> (
            (* InvisiSpec/GhostMinion: hits are invisible (no LRU update);
               SpecLFB and others update replacement state on hits *)
            match t.cfg.defense with
            | Config.Invisispec _ | Config.Ghostminion -> Cache.probe t.l1d r.line
            | _ -> Cache.touch t.l1d r.line)
        | Demand_load | Store_install | Expose | Prime | Prefetch ->
            Cache.touch t.l1d r.line
      in
      if l1_hit then begin
        respond_at t ~due:(now + t.cfg.l1_latency) ~rob_id:r.rob_id ~line:r.line;
        `Done
      end
      else if r.kind = Spec_load && spec_buffer_hit t r.line then begin
        respond_at t ~due:(now + t.cfg.l1_latency) ~rob_id:r.rob_id ~line:r.line;
        `Done
      end
      else if r.kind = Spec_load && lfb_hit t r.line then begin
        respond_at t ~due:(now + t.cfg.l1_latency) ~rob_id:r.rob_id ~line:r.line;
        `Done
      end
      else begin
        (* L1 miss path. UV1: the unpatched InvisiSpec implementation
           triggers an L1 replacement for speculative misses on full sets. *)
        (match t.cfg.defense, r.kind with
        | Config.Invisispec { iv_patched_eviction = false }, Spec_load ->
            if not (Cache.has_free_way t.l1d r.line) then (
              match Cache.force_replacement t.l1d r.line with
              | Some victim ->
                  if t.log.Event.enabled then
                    Event.record t.log
                      (Event.Spec_eviction { cycle = now; line = r.line; victim })
              | None -> ())
        | _ -> ());
        match mshr_for t r with
        | Some m ->
            m.m_waiters <- r :: m.m_waiters;
            record_cleanup_meta t r;
            `Done
        | None ->
            if free_mshr_available t r then begin
              (* SpecLFB: a speculative miss allocates a line-fill-buffer
                 entry instead of installing into L1 *)
              (match t.cfg.defense, r.kind with
              | Config.Speclfb _, Spec_load ->
                  t.lfb <- (r.rob_id, r.line, ref false) :: t.lfb
              | (Config.Invisispec _ | Config.Ghostminion), Spec_load ->
                  t.spec_buffer <- (r.rob_id, r.line, ref false) :: t.spec_buffer
              | _ -> ());
              record_cleanup_meta t r;
              allocate_mshr t ~now r;
              `Done
            end
            else begin
              Amulet_obs.Obs.incr t.m_mshr_full_stalls;
              if t.last_stalled_line <> r.line then begin
                if t.log.Event.enabled then
                  Event.record t.log
                    (Event.Mshr_stall
                       { cycle = now; kind = kind_to_event r.kind; line = r.line });
                t.last_stalled_line <- r.line
              end;
              `Blocked
            end
      end)

(** Advance the memory system to cycle [now]: complete ready MSHRs, then
    drain the controller queue (up to the configured bandwidth, with
    head-of-line blocking). *)
let drain_queue t ~now q =
  let budget = ref t.cfg.queue_bandwidth in
  let blocked = ref false in
  while (not !blocked) && !budget > 0 && not (Queue.is_empty q)
        && t.busy_until <= now do
    let item = Queue.peek q in
    match process_head t ~now item with
    | `Done ->
        ignore (Queue.pop q);
        decr budget
    | `Blocked -> blocked := true
  done

(* closure-free min scans: these run only when something completes, but the
   cached minimum they maintain is what makes the every-cycle checks in
   [tick]/[take_responses] a single integer comparison *)
let rec min_ready acc = function
  | [] -> acc
  | m :: rest ->
      min_ready (if m.m_ready_at < acc then m.m_ready_at else acc) rest

let rec min_due acc = function
  | [] -> acc
  | (d, _, _) :: rest -> min_due (if d < acc then d else acc) rest

let tick t ~now =
  (* MSHR completions, both pools.  The cached next-ready cycle keeps the
     common nothing-completes cycle allocation-free and list-walk-free. *)
  if t.next_mshr_ready <= now then begin
    let ready, pending = List.partition (fun m -> m.m_ready_at <= now) t.mshrs in
    t.mshrs <- pending;
    let gready, gpending = List.partition (fun m -> m.m_ready_at <= now) t.ghost_mshrs in
    t.ghost_mshrs <- gpending;
    t.next_mshr_ready <- min_ready (min_ready max_int pending) gpending;
    List.iter (fun m -> complete_mshr t ~now m)
      (List.sort (fun a b -> compare a.m_ready_at b.m_ready_at) (ready @ gready));
    t.last_stalled_line <- -1
  end;
  (* controller queues: the ghost queue drains independently, so a blocked
     speculative head can never delay non-speculative traffic *)
  if t.busy_until <= now then begin
    drain_queue t ~now t.queue;
    drain_queue t ~now t.ghost_queue
  end

(** Responses due at or before [now]: list of (rob_id, line). *)
let take_responses t ~now =
  if t.next_resp_due > now then []
  else begin
    let due, later = List.partition (fun (d, _, _) -> d <= now) t.responses in
    t.responses <- later;
    t.next_resp_due <- min_due max_int later;
    List.rev_map (fun (_, rob, line) -> (rob, line)) due
  end

(* ------------------------------------------------------------------ *)
(* TLB and instruction fetch                                           *)
(* ------------------------------------------------------------------ *)

let tlb_access t ~now ~addr ~tainted ~by_store =
  let page = Tlb.page_of_addr addr in
  match Tlb.access t.tlb page with
  | `Hit -> ()
  | `Miss ->
      if t.log.Event.enabled then
        Event.record t.log (Event.Tlb_fill { cycle = now; page; tainted; by_store })

(** Presence probe without replacement-state update (Delay-on-Miss's
    hit/miss decision). *)
let l1d_has_line t line = Cache.probe t.l1d line

let fetch_touch t ~now ~pc =
  let line = Cache.line_of t.l1i pc in
  if not (Cache.touch t.l1i line) then begin
    ignore (Cache.install t.l1i line);
    if t.log.Event.enabled then
      Event.record t.log (Event.Cache_install { cycle = now; cache = "L1I"; line })
  end

(* ------------------------------------------------------------------ *)
(* State extraction and reset hooks                                    *)
(* ------------------------------------------------------------------ *)

let l1d_tags t = Cache.tags t.l1d
let l1i_tags t = Cache.tags t.l1i
let tlb_pages t = Tlb.pages t.tlb
let access_order t = List.rev t.access_order
let clear_access_order t = t.access_order <- []

(** Drop the speculative-buffer / LFB entries of an instruction whose expose
    has been issued (the data now travels through the normal fill path). *)
let release_spec_entries t ~rob_id =
  t.spec_buffer <- List.filter (fun (rob, _, _) -> rob <> rob_id) t.spec_buffer;
  t.lfb <- List.filter (fun (rob, _, _) -> rob <> rob_id) t.lfb

(** Drain bookkeeping between test cases without touching cache contents. *)
let reset_transient t =
  Queue.clear t.queue;
  Queue.clear t.ghost_queue;
  t.mshrs <- [];
  t.ghost_mshrs <- [];
  t.next_mshr_ready <- max_int;
  t.responses <- [];
  t.next_resp_due <- max_int;
  t.spec_buffer <- [];
  t.lfb <- [];
  Hashtbl.reset t.cleanup_meta;
  t.busy_until <- 0;
  t.last_stalled_line <- -1

(** The simulator invalidation hook (used for CleanupSpec / SpecLFB-style
    clean-cache initialization, §3.5). *)
let flush_caches t =
  Cache.reset t.l1d;
  Cache.reset t.l1i;
  Cache.reset t.l2;
  Tlb.reset t.tlb

let reset_tlb t = Tlb.reset t.tlb
let reset_l1i t = Cache.reset t.l1i

(** Number of in-flight + queued requests (used to decide when the system
    has drained). *)
let inflight t =
  List.length t.mshrs + List.length t.ghost_mshrs + Queue.length t.queue
  + Queue.length t.ghost_queue

(* ------------------------------------------------------------------ *)
(* Snapshots (persistent tag/replacement state only)                   *)
(* ------------------------------------------------------------------ *)

(** Persistent memory-system state: cache tag arrays and the TLB.  Transient
    state (queues, MSHRs, responses, buffers) is not captured — restore it
    with {!reset_transient}, which every run already performs. *)
type snapshot = {
  snap_l1d : Cache.snapshot;
  snap_l1i : Cache.snapshot;
  snap_l2 : Cache.snapshot;
  snap_tlb : Tlb.snapshot;
}

let snapshot t =
  {
    snap_l1d = Cache.snapshot t.l1d;
    snap_l1i = Cache.snapshot t.l1i;
    snap_l2 = Cache.snapshot t.l2;
    snap_tlb = Tlb.snapshot t.tlb;
  }

let restore t s =
  Cache.restore t.l1d s.snap_l1d;
  Cache.restore t.l1i s.snap_l1i;
  Cache.restore t.l2 s.snap_l2;
  Tlb.restore t.tlb s.snap_tlb
