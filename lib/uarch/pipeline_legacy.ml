(** The out-of-order core, pre-optimization snapshot.

    This is the hot loop as it shipped with the pooled engine: a list-based
    reorder buffer (quadratic append), per-dispatch register-set derivation,
    per-run table construction and unconditionally materialized debug
    events.  It is kept verbatim as (a) the benchmark baseline the
    decode-amortization gate measures against and (b) a differential-testing
    oracle: {!Simulator} runs it when [Config.legacy_hot_loop] is set, and
    test_determinism asserts byte-identical traces against the optimized
    {!Pipeline}.

    A cycle-driven dataflow pipeline in the style of gem5's O3CPU, reduced to
    the mechanisms speculation leaks need: fetch along the predicted path,
    register renaming with undo-log recovery, a reorder buffer with in-order
    commit, a load-store queue with store-to-load forwarding and
    memory-dependence speculation, and squash on branch mispredictions and
    memory-order violations.  Wrong-path instructions compute {e real} values
    from renamed operands (instruction semantics are shared with the
    architectural emulator via {!Amulet_emu.Exec}), so their cache, TLB and
    MSHR side effects are faithful.

    Secure-speculation countermeasures hook in at three points: the request
    kind chosen when a load issues (InvisiSpec / SpecLFB), squash
    notifications (CleanupSpec), and issue gating (STT taint tracking). *)

open Amulet_isa
open Amulet_emu

type src = Committed of int64 | Producer of int
type flag_src = Fcommitted of Flags.t | Fproducer of int
type status = Dispatched | Executing | Done

type entry = {
  id : int;
  index : int;  (** instruction index in the flattened program *)
  pc : int;
  inst : Inst.t;
  srcs : (Reg.t * src) list;
  fsrc : flag_src option;
  dests : Reg.t list;
  prev_renames : (Reg.t * src) list;  (** undo log for squash recovery *)
  prev_flag_rename : flag_src option;
  mem : (Width.t * [ `Load | `Store | `Rmw ]) option;  (** static access info *)
  mutable status : status;
  mutable reg_results : (Reg.t * int64) list;
  mutable flags_result : Flags.t option;
  mutable maddr : int option;
  mutable load_value : int64 option;
  mutable store_value : int64 option;
  mutable requested : bool;  (** cache access in flight or finished *)
  mutable pending_lines : int;
  mutable was_spec : bool;  (** issued under speculation *)
  mutable exposed : bool;  (** InvisiSpec/SpecLFB: made visible to caches *)
  mutable bypassed : bool;  (** load issued past unresolved older stores *)
  mutable done_at : int;  (** completion cycle for fixed-latency execution *)
  mutable predicted_taken : bool;
  mutable bp_history : int;
  mutable resolved : bool;  (** branches: actual direction known *)
  mutable actual_next : int option;  (** next instruction index after this *)
  mutable tainted : bool;  (** STT data taint *)
  mutable taint_logged : bool;
  mutable retired : bool;
}

type run_result = {
  cycles : int;
  committed_insts : int;
  squashes : int;
  squashed_insts : int;
  spec_issued : int;
  mispredicts : int;
  fault : string option;
}

type t = {
  cfg : Config.t;
  ms : Memsys.t;
  bp : Branch_pred.t;
  mdp : Mdp.t;
  log : Event.log;
  arch : State.t;  (** committed architectural state *)
  flat : Program.flat;
  all : (int, entry) Hashtbl.t;  (** every dispatched entry, by id *)
  mutable rob : entry list;  (** oldest first *)
  mutable rob_len : int;  (** cached [List.length rob] for O(1) full checks *)
  rename : src array;
  mutable flag_rename : flag_src;
  mutable next_id : int;
  mutable cycle : int;
  mutable fetch_index : int option;
  mutable fetch_resume_at : int;
  mutable post_exit_pc : int option;
  mutable halted : bool;
  mutable fault : string option;
  mutable committed_insts : int;
  mutable squashes : int;
  mutable squashed_insts : int;
  mutable spec_issued : int;
  mutable mispredicts : int;
  mutable last_commit_cycle : int;
  mutable bpred_order : (int * bool * int) list;  (** newest first *)
  mutable exec_order : int list;
      (** PCs in execution order, including wrong-path instructions (the
          physical-probe observer of §3.2's third trace option); newest
          first *)
  perf : Perf.t;  (** hardware counters; trace-invisible *)
}

let create ?(perf = Perf.noop) (cfg : Config.t) (ms : Memsys.t)
    (bp : Branch_pred.t) (mdp : Mdp.t) (log : Event.log) (arch : State.t)
    (flat : Program.flat) =
  {
    cfg;
    ms;
    bp;
    mdp;
    log;
    arch;
    flat;
    all = Hashtbl.create 256;
    rob = [];
    rob_len = 0;
    rename = Array.init Reg.count (fun i -> Committed (State.read_reg arch (Reg.of_index i)));
    flag_rename = Fcommitted arch.State.flags;
    next_id = 0;
    cycle = 0;
    fetch_index = Some 0;
    fetch_resume_at = 0;
    post_exit_pc = None;
    halted = false;
    fault = None;
    committed_insts = 0;
    squashes = 0;
    squashed_insts = 0;
    spec_issued = 0;
    mispredicts = 0;
    last_commit_cycle = 0;
    bpred_order = [];
    exec_order = [];
    perf;
  }

let find t id = Hashtbl.find t.all id

let disasm inst = Inst.to_string inst

(* ------------------------------------------------------------------ *)
(* Value plumbing                                                      *)
(* ------------------------------------------------------------------ *)

let value_of_src t r = function
  | Committed v -> v
  | Producer id -> (
      let p = find t id in
      match List.assoc_opt r p.reg_results with
      | Some v -> v
      | None -> invalid_arg "Pipeline: producer has no result for register")

let src_done t = function
  | Committed _ -> true
  | Producer id -> (find t id).status = Done

let fsrc_done t = function
  | Fcommitted _ -> true
  | Fproducer id -> (find t id).status = Done

let read_reg_of_entry t (e : entry) r =
  match List.assoc_opt r e.srcs with
  | Some s -> value_of_src t r s
  | None -> invalid_arg ("Pipeline: unexpected register read " ^ Reg.name r)

let flags_of_entry t (e : entry) =
  match e.fsrc with
  | Some (Fcommitted f) -> f
  | Some (Fproducer id) -> (
      match (find t id).flags_result with
      | Some f -> f
      | None -> invalid_arg "Pipeline: flags producer has no result")
  | None -> Flags.initial

let merge_reg_value ~old w v =
  match w with
  | Width.W64 -> v
  | Width.W32 -> Width.truncate Width.W32 v
  | Width.W16 | Width.W8 ->
      Int64.logor (Int64.logand old (Int64.lognot (Width.mask w))) (Width.truncate w v)

(* The Exec.machine view of one entry at completion time. *)
let machine_of t (e : entry) : Exec.machine =
  {
    Exec.read_reg = (fun r -> read_reg_of_entry t e r);
    write_reg =
      (fun w r v ->
        let old =
          match w with
          | Width.W8 | Width.W16 -> read_reg_of_entry t e r
          | Width.W32 | Width.W64 -> 0L
        in
        e.reg_results <- (r, merge_reg_value ~old w v) :: List.remove_assoc r e.reg_results);
    read_flags = (fun () -> flags_of_entry t e);
    write_flags = (fun f -> e.flags_result <- Some f);
    load =
      (fun _w _addr ->
        match e.load_value with
        | Some v -> v
        | None -> invalid_arg "Pipeline: load value not captured");
    store = (fun _w _addr v -> e.store_value <- Some v);
  }

(* Read [width] bytes at [addr]: committed memory overlaid with the store
   data of older, already-executed in-flight stores (store-to-load
   forwarding).  Bytes outside the sandbox read as zero, matching the
   emulator. *)
let overlay_read t (load : entry) addr width =
  let mem = t.arch.State.mem in
  let older_stores =
    List.filter
      (fun (e : entry) ->
        e.id < load.id
        &&
        match e.mem, e.maddr, e.store_value with
        | Some (_, (`Store | `Rmw)), Some _, Some _ -> true
        | _ -> false)
      t.rob
  in
  let n = Width.bytes width in
  let v = ref 0L in
  for i = n - 1 downto 0 do
    let a = addr + i in
    let byte = ref (Memory.read_byte mem a) in
    if Memory.in_bounds mem a then
      List.iter
        (fun (e : entry) ->
          match e.mem, e.maddr, e.store_value with
          | Some (sw, _), Some sa, Some sv ->
              if a >= sa && a < sa + Width.bytes sw then
                byte := Int64.to_int (Int64.shift_right_logical sv (8 * (a - sa))) land 0xFF
          | _ -> ())
        older_stores;
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int !byte)
  done;
  !v

let ranges_overlap a1 n1 a2 n2 = a1 < a2 + n2 && a2 < a1 + n1

(* ------------------------------------------------------------------ *)
(* Speculation and taint                                               *)
(* ------------------------------------------------------------------ *)

(* An instruction is speculative while an older branch is unresolved or an
   older store has an unresolved address (the "Futuristic" threat model of
   InvisiSpec/STT collapses to this for our squash sources). *)
let is_speculative t (e : entry) =
  List.exists
    (fun (o : entry) ->
      o.id < e.id
      && ((Inst.is_cond_branch o.inst && not o.resolved)
         || (Inst.is_store o.inst && o.maddr = None)))
    t.rob

let producer_tainted t = function
  | Committed _ -> false
  | Producer id ->
      let p = find t id in
      p.tainted && not p.retired

let flag_producer_tainted t = function
  | Some (Fproducer id) ->
      let p = find t id in
      p.tainted && not p.retired
  | Some (Fcommitted _) | None -> false

(* STT taint recomputation, oldest-to-youngest, every cycle: a speculative
   load's result is tainted; taint propagates through the dataflow; taint
   clears automatically when the defining load reaches its visibility point
   (no older unresolved branches / stores). *)
let recompute_taints t =
  List.iter
    (fun (e : entry) ->
      let src_taint =
        List.exists (fun (_, s) -> producer_tainted t s) e.srcs
        || flag_producer_tainted t e.fsrc
      in
      let access_taint = Inst.is_load e.inst && is_speculative t e in
      e.tainted <- access_taint || src_taint)
    t.rob

let addr_regs_of e =
  match Inst.mem_access e.inst with
  | Some (m, _, _) -> Operand.address_regs (Operand.Mem m)
  | None -> []

let address_tainted t (e : entry) =
  List.exists
    (fun r ->
      match List.assoc_opt r e.srcs with
      | Some s -> producer_tainted t s
      | None -> false)
    (addr_regs_of e)

(* ------------------------------------------------------------------ *)
(* Dispatch / fetch                                                    *)
(* ------------------------------------------------------------------ *)

let rob_full t = t.rob_len >= t.cfg.rob_size

let dedup_regs regs =
  List.fold_left (fun acc r -> if List.memq r acc then acc else r :: acc) [] regs

let dispatch t index =
  let inst = Program.get t.flat index in
  let pc = Program.pc_of_index t.flat index in
  let id = t.next_id in
  t.next_id <- id + 1;
  let srcs =
    List.map (fun r -> (r, t.rename.(Reg.index r))) (dedup_regs (Inst.source_regs inst))
  in
  let fsrc = if Inst.reads_flags inst then Some t.flag_rename else None in
  let dests = Inst.dest_regs inst in
  let prev_renames = List.map (fun r -> (r, t.rename.(Reg.index r))) dests in
  let prev_flag_rename = if Inst.writes_flags inst then Some t.flag_rename else None in
  let e =
    {
      id;
      index;
      pc;
      inst;
      srcs;
      fsrc;
      dests;
      prev_renames;
      prev_flag_rename;
      mem = (match Inst.mem_access inst with Some (_, w, d) -> Some (w, d) | None -> None);
      status = Dispatched;
      reg_results = [];
      flags_result = None;
      maddr = None;
      load_value = None;
      store_value = None;
      requested = false;
      pending_lines = 0;
      was_spec = false;
      exposed = false;
      bypassed = false;
      done_at = max_int;
      predicted_taken = false;
      bp_history = 0;
      resolved = not (Inst.is_cond_branch inst);
      actual_next = None;
      tainted = false;
      taint_logged = false;
      retired = false;
    }
  in
  List.iter (fun r -> t.rename.(Reg.index r) <- Producer id) dests;
  if Inst.writes_flags inst then t.flag_rename <- Fproducer id;
  Hashtbl.add t.all id e;
  t.rob <- t.rob @ [ e ];
  t.rob_len <- t.rob_len + 1;
  Amulet_obs.Obs.incr t.perf.Perf.fetched;
  Event.record t.log (Event.Fetched { cycle = t.cycle; pc; disasm = disasm inst });
  (* instructions with no execution stage complete at dispatch *)
  (match inst with
  | Inst.Nop | Inst.Fence ->
      e.status <- Done;
      e.actual_next <- Some (index + 1);
      t.exec_order <- e.pc :: t.exec_order
  | Inst.Exit ->
      e.status <- Done;
      t.exec_order <- e.pc :: t.exec_order
  | Inst.Jmp (Inst.Abs target) ->
      e.status <- Done;
      e.actual_next <- Some target;
      t.exec_order <- e.pc :: t.exec_order
  | _ -> ());
  e

let target_index inst =
  match Inst.branch_target inst with
  | Some (Inst.Abs i) -> i
  | Some (Inst.Label _) | None -> invalid_arg "Pipeline: unresolved branch"

let fetch_stage t =
  if t.halted then ()
  else if t.cycle < t.fetch_resume_at then ()
  else
    match t.fetch_index with
    | None -> (
        (* past the end of the test: the front-end keeps prefetching
           sequential lines into L1I until Exit commits (KV1/KV2) *)
        match t.post_exit_pc with
        | None -> ()
        | Some pp ->
            Memsys.fetch_touch t.ms ~now:t.cycle ~pc:pp;
            t.post_exit_pc <- Some (pp + t.cfg.line_bytes))
    | Some start ->
        let idx = ref (Some start) in
        let fetched = ref 0 in
        let continue_ = ref true in
        while !continue_ && !fetched < t.cfg.fetch_width && not (rob_full t) do
          match !idx with
          | None -> continue_ := false
          | Some i ->
              if i < 0 || i >= Program.length t.flat then begin
                t.fault <- Some (Printf.sprintf "fetch escaped code region (index %d)" i);
                t.halted <- true;
                continue_ := false
              end
              else begin
                let inst = Program.get t.flat i in
                let pc = Program.pc_of_index t.flat i in
                Memsys.fetch_touch t.ms ~now:t.cycle ~pc;
                let e = dispatch t i in
                incr fetched;
                match inst with
                | Inst.Exit ->
                    idx := None;
                    t.post_exit_pc <- Some (pc + t.flat.Program.inst_size);
                    continue_ := false
                | Inst.Jmp (Inst.Abs target) -> idx := Some target
                | Inst.Jcc (_, Inst.Abs target) ->
                    let taken = Branch_pred.predict t.bp ~pc in
                    e.predicted_taken <- taken;
                    e.bp_history <- Branch_pred.history t.bp;
                    Branch_pred.speculate_history t.bp ~taken;
                    let next = if taken then target else i + 1 in
                    let target_pc = Program.pc_of_index t.flat next in
                    t.bpred_order <- (pc, taken, target_pc) :: t.bpred_order;
                    Event.record t.log
                      (Event.Predicted { cycle = t.cycle; pc; taken; target = target_pc });
                    idx := Some next
                | _ -> idx := Some (i + 1)
              end
        done;
        t.fetch_index <- !idx

(* ------------------------------------------------------------------ *)
(* Squash                                                              *)
(* ------------------------------------------------------------------ *)

(* Squash all entries with id >= bound, newest first (undo-log recovery). *)
let squash_from t ~bound ~reason =
  let keep, gone = List.partition (fun (e : entry) -> e.id < bound) t.rob in
  if gone <> [] then begin
    t.squashes <- t.squashes + 1;
    t.squashed_insts <- t.squashed_insts + List.length gone;
    Amulet_obs.Obs.incr t.perf.Perf.squashes;
    Amulet_obs.Obs.add t.perf.Perf.squashed_insts (List.length gone);
    let newest_first = List.rev gone in
    List.iter
      (fun (e : entry) ->
        List.iter (fun (r, prev) -> t.rename.(Reg.index r) <- prev) e.prev_renames;
        (match e.prev_flag_rename with
        | Some p -> t.flag_rename <- p
        | None -> ());
        Memsys.cancel t.ms ~now:t.cycle ~rob_id:e.id;
        Event.record t.log (Event.Squashed { cycle = t.cycle; pc = e.pc; reason }))
      newest_first;
    (* branch history repair: rewind to the oldest squashed branch *)
    (match
       List.find_opt (fun (e : entry) -> Inst.is_cond_branch e.inst) gone
     with
    | Some b -> Branch_pred.set_history t.bp b.bp_history
    | None -> ());
    t.rob <- keep;
    t.rob_len <- t.rob_len - List.length gone
  end

let redirect_fetch t ~index =
  t.fetch_index <- Some index;
  t.post_exit_pc <- None;
  t.fetch_resume_at <- t.cycle + 1 + t.cfg.redirect_penalty

(* ------------------------------------------------------------------ *)
(* Issue                                                               *)
(* ------------------------------------------------------------------ *)

let exec_latency t inst =
  match inst with
  | Inst.Imul _ -> t.cfg.imul_latency
  | Inst.Jcc _ -> t.cfg.branch_latency
  | _ -> 1

(* SpecLFB UV6: `isReallyUnsafe` is cleared when there is no older unsafe
   (speculative) load in the load-store queue. *)
let speclfb_has_older_unsafe_load t (e : entry) =
  List.exists
    (fun (o : entry) ->
      o.id < e.id && Inst.is_load o.inst && is_speculative t o)
    t.rob

(* Memory-ordering readiness of a load against older stores. Returns
   [`Ready of bypassed] or [`Wait]. *)
let load_ordering_ready t (e : entry) addr width =
  let bypassed = ref false in
  let blocked = ref false in
  List.iter
    (fun (o : entry) ->
      if o.id < e.id && (not !blocked) && Inst.is_store o.inst then
        match o.maddr, o.store_value with
        | None, _ ->
            (* older store address unknown: consult the predictor *)
            if Mdp.predict_bypass t.mdp ~pc:e.pc then bypassed := true
            else blocked := true
        | Some sa, None ->
            (* address known, data not yet produced (e.g. an RMW waiting on
               its own load): wait only on overlap *)
            let sw = match o.mem with Some (w, _) -> Width.bytes w | None -> 0 in
            if ranges_overlap addr (Width.bytes width) sa sw then blocked := true
        | Some _, Some _ -> ())
    t.rob;
  if !blocked then `Wait else `Ready !bypassed

let stt_cfg t = match t.cfg.defense with Config.Stt c -> Some c | _ -> None

let taint_block t (e : entry) =
  if not e.taint_logged then begin
    e.taint_logged <- true;
    Event.record t.log (Event.Taint_blocked { cycle = t.cycle; pc = e.pc })
  end

(* Try to begin execution of entry [e]; true if it issued. *)
let try_issue t (e : entry) =
  let srcs_ready =
    List.for_all (fun (_, s) -> src_done t s) e.srcs
    && (match e.fsrc with None -> true | Some f -> fsrc_done t f)
  in
  if not srcs_ready then false
  else
    match e.mem with
    | None ->
        e.status <- Executing;
        e.done_at <- t.cycle + exec_latency t e.inst;
        t.exec_order <- e.pc :: t.exec_order;
        true
    | Some (width, dir) -> (
        let addr =
          match Exec.mem_request ~read_reg:(read_reg_of_entry t e) e.inst with
          | Some (a, _, _) -> a
          | None -> invalid_arg "Pipeline: memory entry without request"
        in
        let a_tainted = stt_cfg t <> None && address_tainted t e in
        match dir with
        | `Load | `Rmw -> (
            (* STT gates loads with tainted addresses *)
            if a_tainted then begin
              taint_block t e;
              false
            end
            else
              match load_ordering_ready t e addr width with
              | `Wait -> false
              | `Ready bypassed
                when t.cfg.defense = Config.Delay_on_miss
                     && (is_speculative t e || bypassed)
                     && List.exists
                          (fun line -> not (Memsys.l1d_has_line t.ms line))
                          (Memsys.lines_of_access t.ms ~addr ~width) ->
                  (* selective delay: a speculative miss waits for safety *)
                  ignore bypassed;
                  false
              | `Ready bypassed ->
                  e.maddr <- Some addr;
                  e.bypassed <- bypassed;
                  let spec = is_speculative t e || bypassed in
                  e.was_spec <- spec;
                  if spec then begin
                    t.spec_issued <- t.spec_issued + 1;
                    Amulet_obs.Obs.incr t.perf.Perf.spec_issued
                  end;
                  Memsys.tlb_access t.ms ~now:t.cycle ~addr ~tainted:false
                    ~by_store:false;
                  e.load_value <- Some (overlay_read t e addr width);
                  let kind =
                    match t.cfg.defense with
                    | Config.Invisispec _ | Config.Ghostminion ->
                        if spec then Memsys.Spec_load else Memsys.Demand_load
                    | Config.Speclfb cfg ->
                        if not spec then Memsys.Demand_load
                        else if
                          cfg.Config.lfb_patched_first_load
                          || speclfb_has_older_unsafe_load t e
                        then Memsys.Spec_load
                        else begin
                          (* UV6: the first speculative load in the LSQ is
                             treated as safe and installs normally *)
                          Event.record t.log
                            (Event.Lfb_unprotected
                               {
                                 cycle = t.cycle;
                                 pc = e.pc;
                                 line = Memsys.line_of t.ms addr;
                               });
                          Memsys.Demand_load
                        end
                    | Config.Baseline | Config.Cleanupspec _ | Config.Stt _
                    | Config.Delay_on_miss ->
                        Memsys.Demand_load
                  in
                  e.pending_lines <-
                    Memsys.request_access t.ms ~now:t.cycle ~rob_id:e.id ~pc:e.pc
                      ~addr ~width ~kind ~spec;
                  e.requested <- true;
                  e.status <- Executing;
                  e.done_at <- max_int;
                  t.exec_order <- e.pc :: t.exec_order;
                  true)
        | `Store ->
            (* STT: the KV3 bug lets tainted stores execute (and fill the
               TLB); the patched variant gates them like loads *)
            (match stt_cfg t with
            | Some { Config.stt_patched_store_tlb = true } when a_tainted ->
                taint_block t e;
                false
            | _ ->
                e.maddr <- Some addr;
                e.was_spec <- is_speculative t e;
                if e.was_spec then begin
                  t.spec_issued <- t.spec_issued + 1;
                  Amulet_obs.Obs.incr t.perf.Perf.spec_issued
                end;
                Memsys.tlb_access t.ms ~now:t.cycle ~addr ~tainted:a_tainted
                  ~by_store:true;
                (* CleanupSpec lets speculative stores modify the cache at
                   execute (undo is supposed to clean them: UV3/UV4) *)
                (match t.cfg.defense with
                | Config.Cleanupspec _ ->
                    ignore
                      (Memsys.request_access t.ms ~now:t.cycle ~rob_id:e.id
                         ~pc:e.pc ~addr ~width ~kind:Memsys.Store_install
                         ~spec:e.was_spec)
                | _ -> ());
                e.status <- Executing;
                e.done_at <- t.cycle + 1;
                t.exec_order <- e.pc :: t.exec_order;
                true))

let issue_stage t =
  let issued = ref 0 in
  let fence_seen = ref false in
  List.iter
    (fun (e : entry) ->
      if e.inst = Inst.Fence then fence_seen := true
      else if (not !fence_seen) && e.status = Dispatched && !issued < t.cfg.issue_width
      then if try_issue t e then incr issued)
    t.rob;
  ignore !issued

(* ------------------------------------------------------------------ *)
(* Completion, branch resolution, memory-order violations              *)
(* ------------------------------------------------------------------ *)

(* A store (or RMW) has produced its address+data: younger loads that
   already captured a value from overlapping bytes read stale data. *)
let check_memdep_violation t (s : entry) =
  match s.mem, s.maddr with
  | Some (sw, (`Store | `Rmw)), Some sa ->
      let victim =
        List.find_opt
          (fun (l : entry) ->
            l.id > s.id
            && Inst.is_load l.inst
            && l.load_value <> None
            &&
            match l.mem, l.maddr with
            | Some (lw, (`Load | `Rmw)), Some la ->
                ranges_overlap sa (Width.bytes sw) la (Width.bytes lw)
            | _ -> false)
          t.rob
      in
      (match victim with
      | None -> ()
      | Some l ->
          Mdp.train_violation t.mdp ~pc:l.pc;
          Event.record t.log
            (Event.Squashed { cycle = t.cycle; pc = l.pc; reason = Event.Memdep_violation });
          squash_from t ~bound:l.id ~reason:Event.Memdep_violation;
          redirect_fetch t ~index:l.index)
  | _ -> ()

let resolve_branch t (e : entry) =
  let actual_next =
    match e.actual_next with Some i -> i | None -> invalid_arg "unresolved branch"
  in
  let taken = actual_next <> e.index + 1 in
  let predicted_next =
    if e.predicted_taken then target_index e.inst else e.index + 1
  in
  Branch_pred.train t.bp ~pc:e.pc ~history:e.bp_history ~taken
    ~target:(Program.pc_of_index t.flat actual_next);
  e.resolved <- true;
  if actual_next <> predicted_next then begin
    t.mispredicts <- t.mispredicts + 1;
    Amulet_obs.Obs.incr t.perf.Perf.mispredicts;
    squash_from t ~bound:(e.id + 1) ~reason:Event.Branch_mispredict;
    (* repair history: the branch's own bit was wrong *)
    Branch_pred.set_history t.bp e.bp_history;
    Branch_pred.speculate_history t.bp ~taken;
    redirect_fetch t ~index:actual_next
  end

(* Run the shared semantics for entry [e] and mark it done. *)
let complete t (e : entry) =
  let mc = machine_of t e in
  let outcome = Exec.step mc e.inst in
  (match outcome with
  | Exec.Next -> e.actual_next <- Some (e.index + 1)
  | Exec.Jump i -> e.actual_next <- Some i
  | Exec.Exited -> e.actual_next <- None);
  (* instructions that conditionally skip their write (CMOVcc not taken,
     zero-count shifts) must still supply a result to consumers *)
  List.iter
    (fun r ->
      if not (List.mem_assoc r e.reg_results) then
        e.reg_results <- (r, read_reg_of_entry t e r) :: e.reg_results)
    e.dests;
  e.status <- Done;
  Event.record t.log
    (Event.Executed
       { cycle = t.cycle; pc = e.pc; disasm = disasm e.inst; spec = e.was_spec });
  if Inst.is_cond_branch e.inst then resolve_branch t e;
  if Inst.is_store e.inst then check_memdep_violation t e

let completion_ready t (e : entry) =
  e.status = Executing
  &&
  match e.mem with
  | Some (_, (`Load | `Rmw)) -> e.requested && e.pending_lines = 0
  | Some (_, `Store) | None -> e.done_at <= t.cycle

(* Complete everything ready this cycle, oldest first; squashes restart the
   scan since the ROB changed under us. *)
let complete_stage t =
  let rec go () =
    match List.find_opt (completion_ready t) t.rob with
    | None -> ()
    | Some e ->
        complete t e;
        go ()
  in
  go ()

let apply_responses t =
  List.iter
    (fun (rob_id, _line) ->
      match Hashtbl.find_opt t.all rob_id with
      | Some e when e.status = Executing && e.pending_lines > 0 && not e.retired ->
          if List.memq e t.rob then e.pending_lines <- e.pending_lines - 1
      | Some _ | None -> ())
    (Memsys.take_responses t.ms ~now:t.cycle)

(* ------------------------------------------------------------------ *)
(* Commit                                                              *)
(* ------------------------------------------------------------------ *)

let commit_entry t (e : entry) =
  List.iter (fun (r, v) -> State.write_reg t.arch r v) e.reg_results;
  (match e.flags_result with Some f -> t.arch.State.flags <- f | None -> ());
  (match e.mem, e.maddr with
  | Some (w, (`Store | `Rmw)), Some addr ->
      (match e.store_value with
      | Some v -> Memory.write t.arch.State.mem w addr v
      | None -> invalid_arg "Pipeline: committing store without data");
      (* cache install at commit for defenses that do not allow speculative
         stores into the cache (CleanupSpec installed at execute) *)
      (match t.cfg.defense with
      | Config.Cleanupspec _ -> ()
      | Config.Baseline | Config.Invisispec _ | Config.Stt _ | Config.Speclfb _
      | Config.Delay_on_miss | Config.Ghostminion ->
          ignore
            (Memsys.request_access t.ms ~now:t.cycle ~rob_id:(-1) ~pc:e.pc ~addr ~width:w
               ~kind:Memsys.Store_install ~spec:false))
  | _ -> ());
  if e.bypassed then Mdp.train_correct t.mdp ~pc:e.pc;
  (* release the rename mapping if still pointing at this entry *)
  List.iter
    (fun (r, v) ->
      match t.rename.(Reg.index r) with
      | Producer id when id = e.id -> t.rename.(Reg.index r) <- Committed v
      | _ -> ())
    e.reg_results;
  (match t.flag_rename, e.flags_result with
  | Fproducer id, Some f when id = e.id -> t.flag_rename <- Fcommitted f
  | _ -> ());
  e.retired <- true;
  t.committed_insts <- t.committed_insts + 1;
  Amulet_obs.Obs.incr t.perf.Perf.retired;
  t.last_commit_cycle <- t.cycle;
  Event.record t.log
    (Event.Committed { cycle = t.cycle; pc = e.pc; disasm = disasm e.inst })

(* InvisiSpec / SpecLFB: once a speculatively-issued load reaches its safe
   point (no older squash sources remain), expose it to the cache hierarchy:
   an Expose request installs the speculative-buffer / LFB line into L1.
   This happens before commit, matching the defenses' "Futuristic" modes;
   a stalled Expose that has not completed when the test ends leaves the
   line out of the final cache state (the UV2 observable). *)
let expose_stage t =
  match t.cfg.defense with
  | Config.Invisispec _ | Config.Speclfb _ | Config.Ghostminion ->
      List.iter
        (fun (e : entry) ->
          if
            e.status = Done && e.was_spec && (not e.exposed)
            && Inst.is_load e.inst
            && not (is_speculative t e)
          then begin
            e.exposed <- true;
            (match e.mem, e.maddr with
            | Some (w, _), Some addr ->
                List.iter
                  (fun line ->
                    Memsys.request_expose t.ms ~now:t.cycle ~rob_id:e.id ~line)
                  (Memsys.lines_of_access t.ms ~addr ~width:w)
            | _ -> ());
            Memsys.release_spec_entries t.ms ~rob_id:e.id
          end)
        t.rob
  | Config.Baseline | Config.Cleanupspec _ | Config.Stt _ | Config.Delay_on_miss
    ->
      ()

let commit_stage t =
  let n = ref 0 in
  let continue_ = ref true in
  while !continue_ && !n < t.cfg.commit_width do
    match t.rob with
    | [] -> continue_ := false
    | head :: rest ->
        if head.status = Done && head.resolved then begin
          commit_entry t head;
          t.rob <- rest;
          t.rob_len <- t.rob_len - 1;
          incr n;
          if head.inst = Inst.Exit then begin
            t.halted <- true;
            continue_ := false
          end
        end
        else continue_ := false
  done

(* ------------------------------------------------------------------ *)
(* Main loop                                                           *)
(* ------------------------------------------------------------------ *)

let step_cycle t =
  t.cycle <- t.cycle + 1;
  Amulet_obs.Obs.incr t.perf.Perf.cycles;
  Amulet_obs.Obs.add t.perf.Perf.rob_occupancy t.rob_len;
  Memsys.tick t.ms ~now:t.cycle;
  apply_responses t;
  if stt_cfg t <> None then recompute_taints t;
  complete_stage t;
  expose_stage t;
  issue_stage t;
  fetch_stage t;
  commit_stage t;
  if t.cycle - t.last_commit_cycle > t.cfg.deadlock_cycles then begin
    t.fault <- Some "pipeline deadlock";
    t.halted <- true
  end

let run t : run_result =
  Amulet_obs.Obs.incr t.perf.Perf.runs;
  while (not t.halted) && t.fault = None && t.cycle < t.cfg.max_cycles do
    step_cycle t
  done;
  if (not t.halted) && t.fault = None then t.fault <- Some "cycle limit exceeded";
  (* post-exit drain: short-latency fills (exposes, L2 handshakes) land in
     the final state; memory-latency and MSHR-starved requests do not *)
  for _ = 1 to t.cfg.drain_cycles do
    t.cycle <- t.cycle + 1;
    Memsys.tick t.ms ~now:t.cycle
  done;
  {
    cycles = t.cycle;
    committed_insts = t.committed_insts;
    squashes = t.squashes;
    squashed_insts = t.squashed_insts;
    spec_issued = t.spec_issued;
    mispredicts = t.mispredicts;
    fault = t.fault;
  }

let branch_prediction_order t = List.rev t.bpred_order
let execution_order t = List.rev t.exec_order
let cycles t = t.cycle
