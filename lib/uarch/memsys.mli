(** The simulated memory system: L1I / L1D / L2 tag hierarchy, MSHRs, an
    in-order L1D controller queue, the D-TLB, and the defense-specific
    structures (InvisiSpec's speculative buffer, SpecLFB's line-fill buffer,
    CleanupSpec's undo metadata and cleanup engine). *)

open Amulet_isa

type t

type req_kind = Demand_load | Spec_load | Store_install | Expose | Prime | Prefetch

val create : ?metrics:Amulet_obs.Obs.t -> Config.t -> Event.log -> t
(** [metrics] (default noop) receives the cache/TLB counters plus
    [uarch.mshr.allocs] and [uarch.mshr.full_stalls]. *)

val line_of : t -> int -> int
(** Line-aligned address containing the given byte address. *)

val lines_of_access : t -> addr:int -> width:Width.t -> int list
(** Lines touched by an access (two when it crosses a line boundary). *)

val request_access :
  t ->
  now:int ->
  rob_id:int ->
  pc:int ->
  addr:int ->
  width:Width.t ->
  kind:req_kind ->
  spec:bool ->
  int
(** Submit the cache request(s) for a data access; returns the number of
    line requests issued (responses to wait for). *)

val request_expose : t -> now:int -> rob_id:int -> line:int -> unit
(** Submit an expose / LFB-promote request for one line. *)

val cancel : t -> now:int -> rob_id:int -> unit
(** Cancel the in-flight work of a squashed instruction. *)

val tick : t -> now:int -> unit
(** Advance to cycle [now]: complete ready MSHRs, drain the controller
    queues up to the configured bandwidth (with head-of-line blocking). *)

val take_responses : t -> now:int -> (int * int) list
(** Responses due at or before [now]: list of (rob_id, line). *)

val tlb_access : t -> now:int -> addr:int -> tainted:bool -> by_store:bool -> unit

val l1d_has_line : t -> int -> bool
(** Presence probe without replacement-state update (Delay-on-Miss's
    hit/miss decision). *)

val fetch_touch : t -> now:int -> pc:int -> unit

val release_spec_entries : t -> rob_id:int -> unit
(** Drop the speculative-buffer / LFB entries of an instruction whose expose
    has been issued. *)

val l1d_tags : t -> int list
val l1i_tags : t -> int list
val tlb_pages : t -> int list

val access_order : t -> (int * int) list
(** (pc, addr) of data accesses, oldest first. *)

val clear_access_order : t -> unit

val reset_transient : t -> unit
(** Drain bookkeeping between test cases without touching cache contents. *)

val flush_caches : t -> unit
(** Invalidate L1D/L1I/L2 and the TLB (clean-cache initialization, §3.5). *)

val reset_tlb : t -> unit
val reset_l1i : t -> unit

val inflight : t -> int
(** In-flight + queued requests (drain detection). *)

type snapshot
(** Persistent memory-system state: cache tag arrays and the TLB.  Transient
    state (queues, MSHRs, responses, buffers) is not captured — restore it
    with {!reset_transient}. *)

val snapshot : t -> snapshot
val restore : t -> snapshot -> unit
