(** Gshare branch direction predictor with a BTB.  The global history is
    updated speculatively at fetch and repaired on squash. *)

type t

val create :
  ?metrics:Amulet_obs.Obs.t ->
  history_bits:int ->
  table_bits:int ->
  btb_bits:int ->
  unit ->
  t
(** [metrics] (default noop) receives [uarch.bp.predicts/trains]
    counters. *)

val history : t -> int

val predict : t -> pc:int -> bool
(** Predicted direction under the current speculative history. *)

val btb_lookup : t -> pc:int -> int option
val speculate_history : t -> taken:bool -> unit
val set_history : t -> int -> unit

val train : t -> pc:int -> history:int -> taken:bool -> target:int -> unit
(** Update the PHT with the fetch-time history and the BTB with the actual
    target. *)

type snapshot = {
  snap_table : int array;
  snap_btb_tags : int array;
  snap_btb_targets : int array;
  snap_history : int;
}

val snapshot : t -> snapshot
val restore : t -> snapshot -> unit

val state_words : t -> int array
(** Flat dump of all predictor state (the BP-state trace format). *)

val reset : t -> unit
