(** The out-of-order core.

    A cycle-driven dataflow pipeline in the style of gem5's O3CPU, reduced to
    the mechanisms speculation leaks need: fetch along the predicted path,
    register renaming with undo-log recovery, a reorder buffer with in-order
    commit, a load-store queue with store-to-load forwarding and
    memory-dependence speculation, and squash on branch mispredictions and
    memory-order violations.  Wrong-path instructions compute {e real} values
    from renamed operands (instruction semantics are shared with the
    architectural emulator via {!Amulet_emu.Exec}), so their cache, TLB and
    MSHR side effects are faithful.

    Secure-speculation countermeasures hook in at three points: the request
    kind chosen when a load issues (InvisiSpec / SpecLFB), squash
    notifications (CleanupSpec), and issue gating (STT taint tracking).

    This is the optimized hot loop (see {!Pipeline_legacy} for the original):
    the ROB is a preallocated ring buffer over an id-indexed entry arena,
    per-instruction classification comes from the shared {!Decoded} program
    cache, the {!Amulet_emu.Exec.machine} closures are built once per
    pipeline, debug-event payloads are only materialized when the log is
    enabled, and {!reset} rewinds all of it so steady-state runs reuse every
    structure instead of reallocating them. *)

open Amulet_isa
open Amulet_emu

type src = Committed of int64 | Producer of int
type flag_src = Fcommitted of Flags.t | Fproducer of int
type status = Dispatched | Executing | Done

(* Sentinels for the optional ints of the original implementation; an index
   can legitimately be any small negative number (a malformed branch target
   must still fault as "fetch escaped"), so [min_int] is used, not [-1]. *)
let no_index = min_int
let no_pc = min_int

type entry = {
  id : int;  (** arena slot; dispatch order within a run *)
  producer_tag : src;  (** [Producer id], allocated once per slot *)
  fproducer_tag : flag_src;  (** [Fproducer id], allocated once per slot *)
  mutable dec : Decoded.dinfo;
  srcs : src array;  (** parallel to [dec.src_regs] *)
  mutable fsrc : flag_src;  (** meaningful iff [dec.reads_flags] *)
  prev_renames : src array;
      (** undo log for squash recovery, parallel to [dec.dst_regs]; every
          slot holds the pre-dispatch mapping *)
  mutable prev_flag_rename : flag_src;  (** meaningful iff [dec.writes_flags] *)
  mutable status : status;
  res_set : bool array;  (** parallel to [dec.dst_regs] *)
  res_val : int64 array;
  mutable has_flags_result : bool;
  mutable flags_result : Flags.t;
  mutable has_maddr : bool;
  mutable maddr : int;
  mutable ea_known : bool;
      (** effective address computed (sources were ready); caches the
          [Exec.mem_request] result across issue retries *)
  mutable ea : int;
  mutable n_wait : int;
      (** producers (register or flags sources) not yet [Done]; issue
          eligibility is [n_wait = 0], maintained by completion wakeups
          instead of per-cycle operand polling *)
  mutable waiters : int array;
      (** ids of younger entries waiting on this one (may repeat for
          multi-source consumers); grow-only scratch, reused across runs *)
  mutable n_waiters : int;
  mutable has_load_value : bool;
  mutable load_value : int64;
  mutable has_store_value : bool;
  mutable store_value : int64;
  mutable requested : bool;  (** cache access in flight or finished *)
  mutable pending_lines : int;
  mutable was_spec : bool;  (** issued under speculation *)
  mutable exposed : bool;  (** InvisiSpec/SpecLFB: made visible to caches *)
  mutable bypassed : bool;  (** load issued past unresolved older stores *)
  mutable done_at : int;  (** completion cycle for fixed-latency execution *)
  mutable predicted_taken : bool;
  mutable bp_history : int;
  mutable resolved : bool;  (** branches: actual direction known *)
  mutable actual_next : int;  (** next instruction index; [no_index] unset *)
  mutable tainted : bool;  (** STT data taint *)
  mutable taint_logged : bool;
  mutable retired : bool;
  mutable in_rob : bool;
}

type run_result = {
  cycles : int;
  committed_insts : int;
  squashes : int;
  squashed_insts : int;
  spec_issued : int;
  mispredicts : int;
  fault : string option;
}

type t = {
  cfg : Config.t;
  ms : Memsys.t;
  bp : Branch_pred.t;
  mdp : Mdp.t;
  log : Event.log;
  mutable arch : State.t;  (** committed architectural state *)
  mutable flat : Program.flat;
  mutable code : Decoded.dinfo array;
  mutable pool : entry array;  (** entry arena, indexed by id; reused by reset *)
  rob : entry array;  (** ring buffer of capacity [cfg.rob_size] *)
  mutable rob_head : int;
  mutable rob_len : int;
  rename : src array;
  mutable flag_rename : flag_src;
  mutable next_id : int;
  mutable cycle : int;
  mutable fetch_index : int;  (** [no_index] once Exit has been fetched *)
  mutable fetch_resume_at : int;
  mutable post_exit_pc : int;  (** [no_pc] when not prefetching past Exit *)
  mutable halted : bool;
  mutable fault : string option;
  mutable committed_insts : int;
  mutable squashes : int;
  mutable squashed_insts : int;
  mutable spec_issued : int;
  mutable mispredicts : int;
  mutable last_commit_cycle : int;
  mutable next_done_at : int;
      (** min [done_at] over Executing fixed-latency entries ([max_int] when
          none): with [wake_complete], lets an idle cycle skip the
          completion scan.  A stale (too-small) value only costs a wasted
          scan, never a missed completion. *)
  mutable wake_complete : bool;
      (** a memory response reached [pending_lines = 0] this cycle, so some
          load may be completion-ready *)
  (* growable scratch buffers for the two order traces, oldest first *)
  mutable exec_buf : int array;
  mutable exec_len : int;
  mutable bp_pc : int array;
  mutable bp_taken : bool array;
  mutable bp_tgt : int array;
  mutable bp_len : int;
  perf : Perf.t;  (** hardware counters; trace-invisible *)
  mutable cur : entry;  (** entry the cached machine closures act on *)
  mutable mc : Exec.machine option;  (** built once, reads [cur] *)
  mutable addr_reader : (Reg.t -> int64) option;  (** built once, reads [cur] *)
}

let new_entry id =
  {
    id;
    producer_tag = Producer id;
    fproducer_tag = Fproducer id;
    dec = Decoded.dummy;
    srcs = Array.make Decoded.max_srcs (Committed 0L);
    fsrc = Fcommitted Flags.initial;
    prev_renames = Array.make Decoded.max_dsts (Committed 0L);
    prev_flag_rename = Fcommitted Flags.initial;
    status = Done;
    res_set = Array.make Decoded.max_dsts false;
    res_val = Array.make Decoded.max_dsts 0L;
    has_flags_result = false;
    flags_result = Flags.initial;
    has_maddr = false;
    maddr = 0;
    ea_known = false;
    ea = 0;
    n_wait = 0;
    waiters = Array.make 4 0;
    n_waiters = 0;
    has_load_value = false;
    load_value = 0L;
    has_store_value = false;
    store_value = 0L;
    requested = false;
    pending_lines = 0;
    was_spec = false;
    exposed = false;
    bypassed = false;
    done_at = max_int;
    predicted_taken = false;
    bp_history = 0;
    resolved = true;
    actual_next = no_index;
    tainted = false;
    taint_logged = false;
    retired = true;
    in_rob = false;
  }

let reset t ~arch (dec : Decoded.t) =
  t.arch <- arch;
  t.flat <- Decoded.flat dec;
  t.code <- Decoded.code dec;
  for i = 0 to Reg.count - 1 do
    t.rename.(i) <- Committed (State.read_reg arch (Reg.of_index i))
  done;
  t.flag_rename <- Fcommitted arch.State.flags;
  t.next_id <- 0;
  t.cycle <- 0;
  t.fetch_index <- 0;
  t.fetch_resume_at <- 0;
  t.post_exit_pc <- no_pc;
  t.halted <- false;
  t.fault <- None;
  t.committed_insts <- 0;
  t.squashes <- 0;
  t.squashed_insts <- 0;
  t.spec_issued <- 0;
  t.mispredicts <- 0;
  t.last_commit_cycle <- 0;
  t.next_done_at <- max_int;
  t.wake_complete <- false;
  t.rob_head <- 0;
  t.rob_len <- 0;
  t.exec_len <- 0;
  t.bp_len <- 0

let create ?(perf = Perf.noop) (cfg : Config.t) (ms : Memsys.t)
    (bp : Branch_pred.t) (mdp : Mdp.t) (log : Event.log) (arch : State.t)
    (dec : Decoded.t) =
  let pool = Array.init 256 new_entry in
  let t =
    {
      cfg;
      ms;
      bp;
      mdp;
      log;
      arch;
      flat = Decoded.flat dec;
      code = Decoded.code dec;
      pool;
      rob = Array.make (max cfg.rob_size 1) pool.(0);
      rob_head = 0;
      rob_len = 0;
      rename = Array.make Reg.count (Committed 0L);
      flag_rename = Fcommitted Flags.initial;
      next_id = 0;
      cycle = 0;
      fetch_index = 0;
      fetch_resume_at = 0;
      post_exit_pc = no_pc;
      halted = false;
      fault = None;
      committed_insts = 0;
      squashes = 0;
      squashed_insts = 0;
      spec_issued = 0;
      mispredicts = 0;
      last_commit_cycle = 0;
      next_done_at = max_int;
      wake_complete = false;
      exec_buf = Array.make 256 0;
      exec_len = 0;
      bp_pc = Array.make 64 0;
      bp_taken = Array.make 64 false;
      bp_tgt = Array.make 64 0;
      bp_len = 0;
      perf;
      cur = pool.(0);
      mc = None;
      addr_reader = None;
    }
  in
  reset t ~arch dec;
  t

let find t id = t.pool.(id)
(* [rob_head + k] never exceeds [2n - 2], so a conditional subtract replaces
   the integer division a [mod] would cost on every ROB scan step. *)
let rob_at t k =
  let n = Array.length t.rob in
  let i = t.rob_head + k in
  t.rob.(if i >= n then i - n else i)

let disasm inst = Inst.to_string inst

(* ------------------------------------------------------------------ *)
(* Order-trace scratch buffers                                         *)
(* ------------------------------------------------------------------ *)

let push_exec t pc =
  if t.exec_len = Array.length t.exec_buf then begin
    let nb = Array.make (2 * t.exec_len) 0 in
    Array.blit t.exec_buf 0 nb 0 t.exec_len;
    t.exec_buf <- nb
  end;
  t.exec_buf.(t.exec_len) <- pc;
  t.exec_len <- t.exec_len + 1

let push_bpred t pc taken target =
  if t.bp_len = Array.length t.bp_pc then begin
    let n = t.bp_len in
    let np = Array.make (2 * n) 0
    and nt = Array.make (2 * n) false
    and ng = Array.make (2 * n) 0 in
    Array.blit t.bp_pc 0 np 0 n;
    Array.blit t.bp_taken 0 nt 0 n;
    Array.blit t.bp_tgt 0 ng 0 n;
    t.bp_pc <- np;
    t.bp_taken <- nt;
    t.bp_tgt <- ng
  end;
  t.bp_pc.(t.bp_len) <- pc;
  t.bp_taken.(t.bp_len) <- taken;
  t.bp_tgt.(t.bp_len) <- target;
  t.bp_len <- t.bp_len + 1

(* ------------------------------------------------------------------ *)
(* Value plumbing                                                      *)
(* ------------------------------------------------------------------ *)

let value_of_src t r = function
  | Committed v -> v
  | Producer id ->
      let p = find t id in
      let nd = Array.length p.dec.Decoded.dst_regs in
      let rec go j =
        if j >= nd then
          invalid_arg "Pipeline: producer has no result for register"
        else if p.dec.Decoded.dst_regs.(j) == r && p.res_set.(j) then
          p.res_val.(j)
        else go (j + 1)
      in
      go 0

let read_reg_of_entry t (e : entry) r =
  let srcs = e.dec.Decoded.src_regs in
  let n = Array.length srcs in
  let rec go j =
    if j >= n then
      invalid_arg ("Pipeline: unexpected register read " ^ Reg.name r)
    else if srcs.(j) == r then value_of_src t r e.srcs.(j)
    else go (j + 1)
  in
  go 0

let flags_of_entry t (e : entry) =
  if not e.dec.Decoded.reads_flags then Flags.initial
  else
    match e.fsrc with
    | Fcommitted f -> f
    | Fproducer id ->
        let p = find t id in
        if p.has_flags_result then p.flags_result
        else invalid_arg "Pipeline: flags producer has no result"

let merge_reg_value ~old w v =
  match w with
  | Width.W64 -> v
  | Width.W32 -> Width.truncate Width.W32 v
  | Width.W16 | Width.W8 ->
      Int64.logor (Int64.logand old (Int64.lognot (Width.mask w))) (Width.truncate w v)

(* Store [v] into the first result slot whose register is [r]; duplicate
   destinations (XCHG r, r) therefore collapse onto one slot holding the
   final value, exactly like the old single-entry assoc list. *)
let set_result (e : entry) r v =
  let dsts = e.dec.Decoded.dst_regs in
  let n = Array.length dsts in
  let rec go j =
    if j >= n then invalid_arg "Pipeline: write to undeclared destination"
    else if dsts.(j) == r then begin
      e.res_val.(j) <- v;
      e.res_set.(j) <- true
    end
    else go (j + 1)
  in
  go 0

let has_result (e : entry) r =
  let dsts = e.dec.Decoded.dst_regs in
  let n = Array.length dsts in
  let rec go j =
    if j >= n then false
    else if dsts.(j) == r && e.res_set.(j) then true
    else go (j + 1)
  in
  go 0

(* The register reader over the in-flight entry [t.cur]; built once. *)
let addr_reader t =
  match t.addr_reader with
  | Some f -> f
  | None ->
      let f r = read_reg_of_entry t t.cur r in
      t.addr_reader <- Some f;
      f

(* The Exec.machine view over [t.cur]; built once per pipeline instead of
   once per completing instruction. *)
let machine t =
  match t.mc with
  | Some m -> m
  | None ->
      let m =
        {
          Exec.read_reg = addr_reader t;
          write_reg =
            (fun w r v ->
              let e = t.cur in
              let old =
                match w with
                | Width.W8 | Width.W16 -> read_reg_of_entry t e r
                | Width.W32 | Width.W64 -> 0L
              in
              set_result e r (merge_reg_value ~old w v));
          read_flags = (fun () -> flags_of_entry t t.cur);
          write_flags =
            (fun f ->
              let e = t.cur in
              e.flags_result <- f;
              e.has_flags_result <- true);
          load =
            (fun _w _addr ->
              let e = t.cur in
              if e.has_load_value then e.load_value
              else invalid_arg "Pipeline: load value not captured");
          store =
            (fun _w _addr v ->
              let e = t.cur in
              e.store_value <- v;
              e.has_store_value <- true);
        }
      in
      t.mc <- Some m;
      m

(* Read [width] bytes at [addr]: committed memory overlaid with the store
   data of older, already-executed in-flight stores (store-to-load
   forwarding).  Bytes outside the sandbox read as zero, matching the
   emulator. *)
let overlay_read t (load : entry) addr width =
  let mem = t.arch.State.mem in
  let n = Width.bytes width in
  let v = ref 0L in
  for i = n - 1 downto 0 do
    let a = addr + i in
    let byte = ref (Memory.read_byte mem a) in
    if Memory.in_bounds mem a then
      (* oldest first, so the newest overlapping store wins by overwrite *)
      for k = 0 to t.rob_len - 1 do
        let e = rob_at t k in
        if e.id < load.id && e.has_maddr && e.has_store_value then
          match e.dec.Decoded.mem with
          | Some (sw, (`Store | `Rmw)) ->
              let sa = e.maddr in
              if a >= sa && a < sa + Width.bytes sw then
                byte :=
                  Int64.to_int (Int64.shift_right_logical e.store_value (8 * (a - sa)))
                  land 0xFF
          | Some (_, `Load) | None -> ()
      done;
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int !byte)
  done;
  !v

let ranges_overlap a1 n1 a2 n2 = a1 < a2 + n2 && a2 < a1 + n1

(* ------------------------------------------------------------------ *)
(* Speculation and taint                                               *)
(* ------------------------------------------------------------------ *)

(* An instruction is speculative while an older branch is unresolved or an
   older store has an unresolved address (the "Futuristic" threat model of
   InvisiSpec/STT collapses to this for our squash sources).  The ring is
   id-ascending, so the scan stops at the first entry no older than [e]. *)
let is_speculative t (e : entry) =
  let spec = ref false in
  let k = ref 0 in
  let continue_ = ref true in
  while !continue_ && !k < t.rob_len do
    let o = rob_at t !k in
    if o.id >= e.id then continue_ := false
    else begin
      if
        (o.dec.Decoded.is_cond_branch && not o.resolved)
        || (o.dec.Decoded.is_store && not o.has_maddr)
      then begin
        spec := true;
        continue_ := false
      end;
      incr k
    end
  done;
  !spec

let producer_tainted t = function
  | Committed _ -> false
  | Producer id ->
      let p = find t id in
      p.tainted && not p.retired

let flag_producer_tainted t (e : entry) =
  e.dec.Decoded.reads_flags
  &&
  match e.fsrc with
  | Fproducer id ->
      let p = find t id in
      p.tainted && not p.retired
  | Fcommitted _ -> false

(* STT taint recomputation, oldest-to-youngest, every cycle: a speculative
   load's result is tainted; taint propagates through the dataflow; taint
   clears automatically when the defining load reaches its visibility point
   (no older unresolved branches / stores). *)
let recompute_taints t =
  for k = 0 to t.rob_len - 1 do
    let e = rob_at t k in
    let src_taint = ref (flag_producer_tainted t e) in
    let n = Array.length e.dec.Decoded.src_regs in
    for j = 0 to n - 1 do
      if producer_tainted t e.srcs.(j) then src_taint := true
    done;
    let access_taint = e.dec.Decoded.is_load && is_speculative t e in
    e.tainted <- access_taint || !src_taint
  done

let address_tainted t (e : entry) =
  let addr_regs = e.dec.Decoded.addr_regs in
  let srcs = e.dec.Decoded.src_regs in
  let nsrc = Array.length srcs in
  let tainted = ref false in
  for j = 0 to Array.length addr_regs - 1 do
    let r = addr_regs.(j) in
    let rec go k =
      if k >= nsrc then ()
      else if srcs.(k) == r then begin
        if producer_tainted t e.srcs.(k) then tainted := true
      end
      else go (k + 1)
    in
    go 0
  done;
  !tainted

(* ------------------------------------------------------------------ *)
(* Dispatch / fetch                                                    *)
(* ------------------------------------------------------------------ *)

let rob_full t = t.rob_len >= t.cfg.rob_size

let grow_pool t =
  let old = t.pool in
  let n = Array.length old in
  t.pool <- Array.init (2 * n) (fun i -> if i < n then old.(i) else new_entry i)

let dispatch t (d : Decoded.dinfo) =
  let id = t.next_id in
  t.next_id <- id + 1;
  if id >= Array.length t.pool then grow_pool t;
  let e = t.pool.(id) in
  e.dec <- d;
  let nsrc = Array.length d.Decoded.src_regs in
  for j = 0 to nsrc - 1 do
    e.srcs.(j) <- t.rename.(Reg.index d.Decoded.src_regs.(j))
  done;
  if d.Decoded.reads_flags then e.fsrc <- t.flag_rename;
  let ndst = Array.length d.Decoded.dst_regs in
  (* capture the whole undo log before touching the map, so duplicate
     destinations all record the pre-dispatch mapping *)
  for j = 0 to ndst - 1 do
    e.prev_renames.(j) <- t.rename.(Reg.index d.Decoded.dst_regs.(j))
  done;
  for j = 0 to ndst - 1 do
    t.rename.(Reg.index d.Decoded.dst_regs.(j)) <- e.producer_tag
  done;
  if d.Decoded.writes_flags then begin
    e.prev_flag_rename <- t.flag_rename;
    t.flag_rename <- e.fproducer_tag
  end;
  e.n_waiters <- 0;
  e.n_wait <- 0;
  (let wait_on id =
     let p = t.pool.(id) in
     if p.status <> Done then begin
       e.n_wait <- e.n_wait + 1;
       if p.n_waiters >= Array.length p.waiters then begin
         let bigger = Array.make (2 * Array.length p.waiters) 0 in
         Array.blit p.waiters 0 bigger 0 p.n_waiters;
         p.waiters <- bigger
       end;
       p.waiters.(p.n_waiters) <- e.id;
       p.n_waiters <- p.n_waiters + 1
     end
   in
   for j = 0 to nsrc - 1 do
     match e.srcs.(j) with Producer id -> wait_on id | Committed _ -> ()
   done;
   if d.Decoded.reads_flags then
     match e.fsrc with Fproducer id -> wait_on id | Fcommitted _ -> ());
  e.status <- Dispatched;
  for j = 0 to Decoded.max_dsts - 1 do
    e.res_set.(j) <- false
  done;
  e.has_flags_result <- false;
  e.has_maddr <- false;
  e.ea_known <- false;
  e.has_load_value <- false;
  e.has_store_value <- false;
  e.requested <- false;
  e.pending_lines <- 0;
  e.was_spec <- false;
  e.exposed <- false;
  e.bypassed <- false;
  e.done_at <- max_int;
  e.predicted_taken <- false;
  e.bp_history <- 0;
  e.resolved <- not d.Decoded.is_cond_branch;
  e.actual_next <- no_index;
  e.tainted <- false;
  e.taint_logged <- false;
  e.retired <- false;
  e.in_rob <- true;
  (let n = Array.length t.rob in
   let i = t.rob_head + t.rob_len in
   t.rob.(if i >= n then i - n else i) <- e);
  t.rob_len <- t.rob_len + 1;
  Amulet_obs.Obs.incr t.perf.Perf.fetched;
  if t.log.Event.enabled then
    Event.record t.log
      (Event.Fetched { cycle = t.cycle; pc = d.Decoded.pc; disasm = disasm d.Decoded.inst });
  (* instructions with no execution stage complete at dispatch *)
  (match d.Decoded.kind with
  | Decoded.Dnext ->
      e.status <- Done;
      e.actual_next <- d.Decoded.index + 1;
      push_exec t d.Decoded.pc
  | Decoded.Dexit ->
      e.status <- Done;
      push_exec t d.Decoded.pc
  | Decoded.Djump target ->
      e.status <- Done;
      e.actual_next <- target;
      push_exec t d.Decoded.pc
  | Decoded.Plain -> ());
  e

let fetch_stage t =
  if t.halted then ()
  else if t.cycle < t.fetch_resume_at then ()
  else if t.fetch_index = no_index then begin
    (* past the end of the test: the front-end keeps prefetching
       sequential lines into L1I until Exit commits (KV1/KV2) *)
    if t.post_exit_pc <> no_pc then begin
      Memsys.fetch_touch t.ms ~now:t.cycle ~pc:t.post_exit_pc;
      t.post_exit_pc <- t.post_exit_pc + t.cfg.line_bytes
    end
  end
  else begin
    let idx = ref t.fetch_index in
    let fetched = ref 0 in
    let continue_ = ref true in
    while !continue_ && !fetched < t.cfg.fetch_width && not (rob_full t) do
      let i = !idx in
      if i = no_index then continue_ := false
      else if i < 0 || i >= Array.length t.code then begin
        t.fault <- Some (Printf.sprintf "fetch escaped code region (index %d)" i);
        t.halted <- true;
        continue_ := false
      end
      else begin
        let d = t.code.(i) in
        Memsys.fetch_touch t.ms ~now:t.cycle ~pc:d.Decoded.pc;
        let e = dispatch t d in
        incr fetched;
        match d.Decoded.kind with
        | Decoded.Dexit ->
            idx := no_index;
            t.post_exit_pc <- d.Decoded.pc + t.flat.Program.inst_size;
            continue_ := false
        | Decoded.Djump target -> idx := target
        | Decoded.Plain when d.Decoded.is_cond_branch && d.Decoded.has_abs_target ->
            let taken = Branch_pred.predict t.bp ~pc:d.Decoded.pc in
            e.predicted_taken <- taken;
            e.bp_history <- Branch_pred.history t.bp;
            Branch_pred.speculate_history t.bp ~taken;
            let next = if taken then d.Decoded.branch_abs else i + 1 in
            let target_pc = Program.pc_of_index t.flat next in
            push_bpred t d.Decoded.pc taken target_pc;
            if t.log.Event.enabled then
              Event.record t.log
                (Event.Predicted
                   { cycle = t.cycle; pc = d.Decoded.pc; taken; target = target_pc });
            idx := next
        | Decoded.Plain | Decoded.Dnext -> idx := i + 1
      end
    done;
    t.fetch_index <- !idx
  end

(* ------------------------------------------------------------------ *)
(* Squash                                                              *)
(* ------------------------------------------------------------------ *)

(* Squash all entries with id >= bound, newest first (undo-log recovery).
   The ring is id-ascending, so the squashed entries are a suffix. *)
let squash_from t ~bound ~reason =
  let keep = ref t.rob_len in
  while !keep > 0 && (rob_at t (!keep - 1)).id >= bound do
    decr keep
  done;
  let gone = t.rob_len - !keep in
  if gone > 0 then begin
    t.squashes <- t.squashes + 1;
    t.squashed_insts <- t.squashed_insts + gone;
    Amulet_obs.Obs.incr t.perf.Perf.squashes;
    Amulet_obs.Obs.add t.perf.Perf.squashed_insts gone;
    for k = t.rob_len - 1 downto !keep do
      let e = rob_at t k in
      let dsts = e.dec.Decoded.dst_regs in
      for j = 0 to Array.length dsts - 1 do
        t.rename.(Reg.index dsts.(j)) <- e.prev_renames.(j)
      done;
      if e.dec.Decoded.writes_flags then t.flag_rename <- e.prev_flag_rename;
      Memsys.cancel t.ms ~now:t.cycle ~rob_id:e.id;
      e.in_rob <- false;
      if t.log.Event.enabled then
        Event.record t.log
          (Event.Squashed { cycle = t.cycle; pc = e.dec.Decoded.pc; reason })
    done;
    (* branch history repair: rewind to the oldest squashed branch *)
    (let rec oldest_branch k =
       if k >= t.rob_len then ()
       else
         let e = rob_at t k in
         if e.dec.Decoded.is_cond_branch then Branch_pred.set_history t.bp e.bp_history
         else oldest_branch (k + 1)
     in
     oldest_branch !keep);
    t.rob_len <- !keep
  end

let redirect_fetch t ~index =
  t.fetch_index <- index;
  t.post_exit_pc <- no_pc;
  t.fetch_resume_at <- t.cycle + 1 + t.cfg.redirect_penalty

(* ------------------------------------------------------------------ *)
(* Issue                                                               *)
(* ------------------------------------------------------------------ *)

let exec_latency t inst =
  match inst with
  | Inst.Imul _ -> t.cfg.imul_latency
  | Inst.Jcc _ -> t.cfg.branch_latency
  | _ -> 1

(* SpecLFB UV6: `isReallyUnsafe` is cleared when there is no older unsafe
   (speculative) load in the load-store queue. *)
let speclfb_has_older_unsafe_load t (e : entry) =
  let found = ref false in
  let k = ref 0 in
  let continue_ = ref true in
  while !continue_ && !k < t.rob_len do
    let o = rob_at t !k in
    if o.id >= e.id then continue_ := false
    else begin
      if o.dec.Decoded.is_load && is_speculative t o then begin
        found := true;
        continue_ := false
      end;
      incr k
    end
  done;
  !found

(* Memory-ordering readiness of a load against older stores. Returns
   [`Ready of bypassed] or [`Wait]. *)
let load_ordering_ready t (e : entry) addr width =
  let bypassed = ref false in
  let blocked = ref false in
  (* the ring is id-ascending: stop at the first entry no older than [e] *)
  let k = ref 0 in
  let continue_ = ref true in
  while !continue_ && !k < t.rob_len do
    let o = rob_at t !k in
    incr k;
    if o.id >= e.id then continue_ := false
    else if (not !blocked) && o.dec.Decoded.is_store then
      if not o.has_maddr then begin
        (* older store address unknown: consult the predictor *)
        if Mdp.predict_bypass t.mdp ~pc:e.dec.Decoded.pc then bypassed := true
        else blocked := true
      end
      else if not o.has_store_value then begin
        (* address known, data not yet produced (e.g. an RMW waiting on
           its own load): wait only on overlap *)
        let sw =
          match o.dec.Decoded.mem with Some (w, _) -> Width.bytes w | None -> 0
        in
        if ranges_overlap addr (Width.bytes width) o.maddr sw then blocked := true
      end
  done;
  if !blocked then `Wait else `Ready !bypassed

let stt_cfg t = match t.cfg.defense with Config.Stt c -> Some c | _ -> None

let taint_block t (e : entry) =
  if not e.taint_logged then begin
    e.taint_logged <- true;
    if t.log.Event.enabled then
      Event.record t.log (Event.Taint_blocked { cycle = t.cycle; pc = e.dec.Decoded.pc })
  end

(* Try to begin execution of entry [e]; true if it issued.  [spec] is
   [is_speculative t e], computed incrementally by the issue scan (the only
   intra-cycle change to a prefix entry's squash-source status during issue
   is a store learning its address, which the scan observes in order). *)
let try_issue t ~spec:spec_above (e : entry) =
  let d = e.dec in
  if e.n_wait > 0 then false
  else
    match d.Decoded.mem with
    | None ->
        e.status <- Executing;
        e.done_at <- t.cycle + exec_latency t d.Decoded.inst;
        if e.done_at < t.next_done_at then t.next_done_at <- e.done_at;
        push_exec t d.Decoded.pc;
        true
    | Some (width, dir) -> (
        (* the sources are ready, so the effective address is final: compute
           it once and reuse it across issue retries (a load stalled on
           memory ordering re-enters here every cycle) *)
        let addr =
          if e.ea_known then e.ea
          else begin
            t.cur <- e;
            match Exec.mem_request ~read_reg:(addr_reader t) d.Decoded.inst with
            | Some (a, _, _) ->
                e.ea <- a;
                e.ea_known <- true;
                a
            | None -> invalid_arg "Pipeline: memory entry without request"
          end
        in
        let a_tainted = stt_cfg t <> None && address_tainted t e in
        match dir with
        | `Load | `Rmw -> (
            (* STT gates loads with tainted addresses *)
            if a_tainted then begin
              taint_block t e;
              false
            end
            else
              match load_ordering_ready t e addr width with
              | `Wait -> false
              | `Ready bypassed
                when t.cfg.defense = Config.Delay_on_miss
                     && (spec_above || bypassed)
                     && List.exists
                          (fun line -> not (Memsys.l1d_has_line t.ms line))
                          (Memsys.lines_of_access t.ms ~addr ~width) ->
                  (* selective delay: a speculative miss waits for safety *)
                  ignore bypassed;
                  false
              | `Ready bypassed ->
                  e.maddr <- addr;
                  e.has_maddr <- true;
                  e.bypassed <- bypassed;
                  let spec = spec_above || bypassed in
                  e.was_spec <- spec;
                  if spec then begin
                    t.spec_issued <- t.spec_issued + 1;
                    Amulet_obs.Obs.incr t.perf.Perf.spec_issued
                  end;
                  Memsys.tlb_access t.ms ~now:t.cycle ~addr ~tainted:false
                    ~by_store:false;
                  e.load_value <- overlay_read t e addr width;
                  e.has_load_value <- true;
                  let kind =
                    match t.cfg.defense with
                    | Config.Invisispec _ | Config.Ghostminion ->
                        if spec then Memsys.Spec_load else Memsys.Demand_load
                    | Config.Speclfb cfg ->
                        if not spec then Memsys.Demand_load
                        else if
                          cfg.Config.lfb_patched_first_load
                          || speclfb_has_older_unsafe_load t e
                        then Memsys.Spec_load
                        else begin
                          (* UV6: the first speculative load in the LSQ is
                             treated as safe and installs normally *)
                          if t.log.Event.enabled then
                            Event.record t.log
                              (Event.Lfb_unprotected
                                 {
                                   cycle = t.cycle;
                                   pc = d.Decoded.pc;
                                   line = Memsys.line_of t.ms addr;
                                 });
                          Memsys.Demand_load
                        end
                    | Config.Baseline | Config.Cleanupspec _ | Config.Stt _
                    | Config.Delay_on_miss ->
                        Memsys.Demand_load
                  in
                  e.pending_lines <-
                    Memsys.request_access t.ms ~now:t.cycle ~rob_id:e.id
                      ~pc:d.Decoded.pc ~addr ~width ~kind ~spec;
                  e.requested <- true;
                  e.status <- Executing;
                  e.done_at <- max_int;
                  push_exec t d.Decoded.pc;
                  true)
        | `Store -> (
            (* STT: the KV3 bug lets tainted stores execute (and fill the
               TLB); the patched variant gates them like loads *)
            match stt_cfg t with
            | Some { Config.stt_patched_store_tlb = true } when a_tainted ->
                taint_block t e;
                false
            | _ ->
                e.maddr <- addr;
                e.has_maddr <- true;
                e.was_spec <- spec_above;
                if e.was_spec then begin
                  t.spec_issued <- t.spec_issued + 1;
                  Amulet_obs.Obs.incr t.perf.Perf.spec_issued
                end;
                Memsys.tlb_access t.ms ~now:t.cycle ~addr ~tainted:a_tainted
                  ~by_store:true;
                (* CleanupSpec lets speculative stores modify the cache at
                   execute (undo is supposed to clean them: UV3/UV4) *)
                (match t.cfg.defense with
                | Config.Cleanupspec _ ->
                    ignore
                      (Memsys.request_access t.ms ~now:t.cycle ~rob_id:e.id
                         ~pc:d.Decoded.pc ~addr ~width ~kind:Memsys.Store_install
                         ~spec:e.was_spec)
                | _ -> ());
                e.status <- Executing;
                e.done_at <- t.cycle + 1;
                if e.done_at < t.next_done_at then t.next_done_at <- e.done_at;
                push_exec t d.Decoded.pc;
                true))

let issue_stage t =
  (* a fence stalls everything younger, and once [issue_width] entries have
     issued the rest of the scan is a no-op: stop early in both cases.
     [spec_above] incrementally tracks whether any older entry is still a
     squash source (see {!try_issue}). *)
  let issued = ref 0 in
  let k = ref 0 in
  let spec_above = ref false in
  while !k < t.rob_len && !issued < t.cfg.issue_width do
    let e = rob_at t !k in
    if e.dec.Decoded.is_fence then k := t.rob_len
    else begin
      if e.status = Dispatched && try_issue t ~spec:!spec_above e then
        incr issued;
      if
        (e.dec.Decoded.is_cond_branch && not e.resolved)
        || (e.dec.Decoded.is_store && not e.has_maddr)
      then spec_above := true;
      incr k
    end
  done

(* ------------------------------------------------------------------ *)
(* Completion, branch resolution, memory-order violations              *)
(* ------------------------------------------------------------------ *)

(* A store (or RMW) has produced its address+data: younger loads that
   already captured a value from overlapping bytes read stale data. *)
let check_memdep_violation t (s : entry) =
  match s.dec.Decoded.mem with
  | Some (sw, (`Store | `Rmw)) when s.has_maddr ->
      let sa = s.maddr in
      let victim = ref None in
      let k = ref 0 in
      while !victim = None && !k < t.rob_len do
        let l = rob_at t !k in
        if
          l.id > s.id && l.dec.Decoded.is_load && l.has_load_value && l.has_maddr
          &&
          match l.dec.Decoded.mem with
          | Some (lw, (`Load | `Rmw)) ->
              ranges_overlap sa (Width.bytes sw) l.maddr (Width.bytes lw)
          | Some (_, `Store) | None -> false
        then victim := Some l;
        incr k
      done;
      (match !victim with
      | None -> ()
      | Some l ->
          Mdp.train_violation t.mdp ~pc:l.dec.Decoded.pc;
          if t.log.Event.enabled then
            Event.record t.log
              (Event.Squashed
                 { cycle = t.cycle; pc = l.dec.Decoded.pc; reason = Event.Memdep_violation });
          squash_from t ~bound:l.id ~reason:Event.Memdep_violation;
          redirect_fetch t ~index:l.dec.Decoded.index)
  | _ -> ()

let resolve_branch t (e : entry) =
  let actual_next =
    if e.actual_next = no_index then invalid_arg "unresolved branch"
    else e.actual_next
  in
  let taken = actual_next <> e.dec.Decoded.index + 1 in
  let predicted_next =
    if e.predicted_taken then
      if e.dec.Decoded.has_abs_target then e.dec.Decoded.branch_abs
      else invalid_arg "Pipeline: unresolved branch"
    else e.dec.Decoded.index + 1
  in
  Branch_pred.train t.bp ~pc:e.dec.Decoded.pc ~history:e.bp_history ~taken
    ~target:(Program.pc_of_index t.flat actual_next);
  e.resolved <- true;
  if actual_next <> predicted_next then begin
    t.mispredicts <- t.mispredicts + 1;
    Amulet_obs.Obs.incr t.perf.Perf.mispredicts;
    squash_from t ~bound:(e.id + 1) ~reason:Event.Branch_mispredict;
    (* repair history: the branch's own bit was wrong *)
    Branch_pred.set_history t.bp e.bp_history;
    Branch_pred.speculate_history t.bp ~taken;
    redirect_fetch t ~index:actual_next
  end

(* Run the shared semantics for entry [e] and mark it done. *)
let complete t (e : entry) =
  t.cur <- e;
  let outcome = Exec.step (machine t) e.dec.Decoded.inst in
  (match outcome with
  | Exec.Next -> e.actual_next <- e.dec.Decoded.index + 1
  | Exec.Jump i -> e.actual_next <- i
  | Exec.Exited -> e.actual_next <- no_index);
  (* instructions that conditionally skip their write (CMOVcc not taken,
     zero-count shifts) must still supply a result to consumers *)
  let dsts = e.dec.Decoded.dst_regs in
  for j = 0 to Array.length dsts - 1 do
    let r = dsts.(j) in
    if not (has_result e r) then set_result e r (read_reg_of_entry t e r)
  done;
  e.status <- Done;
  for k = 0 to e.n_waiters - 1 do
    let w = t.pool.(e.waiters.(k)) in
    w.n_wait <- w.n_wait - 1
  done;
  if t.log.Event.enabled then
    Event.record t.log
      (Event.Executed
         {
           cycle = t.cycle;
           pc = e.dec.Decoded.pc;
           disasm = disasm e.dec.Decoded.inst;
           spec = e.was_spec;
         });
  if e.dec.Decoded.is_cond_branch then resolve_branch t e;
  if e.dec.Decoded.is_store then check_memdep_violation t e

let completion_ready t (e : entry) =
  e.status = Executing
  &&
  match e.dec.Decoded.mem with
  | Some (_, (`Load | `Rmw)) -> e.requested && e.pending_lines = 0
  | Some (_, `Store) | None -> e.done_at <= t.cycle

(* Complete everything ready this cycle, oldest first.  Completing an entry
   never makes an older one ready (readiness depends only on responses and
   fixed latencies), so a single forward pass suffices — except when a
   completion squashes (mispredict, memory-order violation): the ROB changed
   under us and the scan restarts.

   An entry only becomes ready when a memory response lands
   ([wake_complete], set by [apply_responses]) or the clock reaches a
   fixed-latency [done_at] ([next_done_at], min-tracked at issue and
   recomputed exactly by each scan) — any other cycle skips the scan
   entirely, which is what keeps miss-stall cycles cheap. *)
let complete_stage t =
  if t.wake_complete || t.next_done_at <= t.cycle then begin
    t.wake_complete <- false;
    let next = ref max_int in
    let k = ref 0 in
    while !k < t.rob_len do
      let e = rob_at t !k in
      if completion_ready t e then begin
        let squashes_before = t.squashes in
        complete t e;
        if t.squashes <> squashes_before then begin
          k := 0;
          next := max_int
        end
        else incr k
      end
      else begin
        (if e.status = Executing then
           match e.dec.Decoded.mem with
           | Some (_, (`Load | `Rmw)) -> ()
           | Some (_, `Store) | None ->
               if e.done_at < !next then next := e.done_at);
        incr k
      end
    done;
    t.next_done_at <- !next
  end

let apply_responses t =
  match Memsys.take_responses t.ms ~now:t.cycle with
  | [] -> ()
  | responses ->
      List.iter
        (fun (rob_id, _line) ->
          (* store installs carry rob_id = -1; squashed ids are out of the
             ROB *)
          if rob_id >= 0 && rob_id < t.next_id then begin
            let e = t.pool.(rob_id) in
            if
              e.status = Executing && e.pending_lines > 0 && (not e.retired)
              && e.in_rob
            then begin
              e.pending_lines <- e.pending_lines - 1;
              if e.pending_lines = 0 then t.wake_complete <- true
            end
          end)
        responses

(* ------------------------------------------------------------------ *)
(* Commit                                                              *)
(* ------------------------------------------------------------------ *)

let commit_entry t (e : entry) =
  let dsts = e.dec.Decoded.dst_regs in
  let nd = Array.length dsts in
  for j = 0 to nd - 1 do
    if e.res_set.(j) then State.write_reg t.arch dsts.(j) e.res_val.(j)
  done;
  if e.has_flags_result then t.arch.State.flags <- e.flags_result;
  (match e.dec.Decoded.mem with
  | Some (w, (`Store | `Rmw)) when e.has_maddr ->
      let addr = e.maddr in
      if not e.has_store_value then
        invalid_arg "Pipeline: committing store without data";
      Memory.write t.arch.State.mem w addr e.store_value;
      (* cache install at commit for defenses that do not allow speculative
         stores into the cache (CleanupSpec installed at execute) *)
      (match t.cfg.defense with
      | Config.Cleanupspec _ -> ()
      | Config.Baseline | Config.Invisispec _ | Config.Stt _ | Config.Speclfb _
      | Config.Delay_on_miss | Config.Ghostminion ->
          ignore
            (Memsys.request_access t.ms ~now:t.cycle ~rob_id:(-1) ~pc:e.dec.Decoded.pc
               ~addr ~width:w ~kind:Memsys.Store_install ~spec:false))
  | _ -> ());
  if e.bypassed then Mdp.train_correct t.mdp ~pc:e.dec.Decoded.pc;
  (* release the rename mapping if still pointing at this entry *)
  for j = 0 to nd - 1 do
    if e.res_set.(j) then
      match t.rename.(Reg.index dsts.(j)) with
      | Producer id when id = e.id ->
          t.rename.(Reg.index dsts.(j)) <- Committed e.res_val.(j)
      | _ -> ()
  done;
  (match t.flag_rename with
  | Fproducer id when id = e.id && e.has_flags_result ->
      t.flag_rename <- Fcommitted e.flags_result
  | _ -> ());
  e.retired <- true;
  t.committed_insts <- t.committed_insts + 1;
  Amulet_obs.Obs.incr t.perf.Perf.retired;
  t.last_commit_cycle <- t.cycle;
  if t.log.Event.enabled then
    Event.record t.log
      (Event.Committed
         { cycle = t.cycle; pc = e.dec.Decoded.pc; disasm = disasm e.dec.Decoded.inst })

(* InvisiSpec / SpecLFB: once a speculatively-issued load reaches its safe
   point (no older squash sources remain), expose it to the cache hierarchy:
   an Expose request installs the speculative-buffer / LFB line into L1.
   This happens before commit, matching the defenses' "Futuristic" modes;
   a stalled Expose that has not completed when the test ends leaves the
   line out of the final cache state (the UV2 observable). *)
let expose_stage t =
  match t.cfg.defense with
  | Config.Invisispec _ | Config.Speclfb _ | Config.Ghostminion ->
      (* one oldest-to-youngest pass: [spec_above] carries "some older entry
         is still a squash source", which is exactly [is_speculative] for
         the current entry without re-scanning the ROB prefix per candidate.
         Nothing below the first squash source can expose, so the scan stops
         there. *)
      let spec_above = ref false in
      let k = ref 0 in
      while (not !spec_above) && !k < t.rob_len do
        let e = rob_at t !k in
        if
          e.status = Done && e.was_spec && (not e.exposed)
          && e.dec.Decoded.is_load
        then begin
          e.exposed <- true;
          (match e.dec.Decoded.mem with
          | Some (w, _) when e.has_maddr ->
              List.iter
                (fun line -> Memsys.request_expose t.ms ~now:t.cycle ~rob_id:e.id ~line)
                (Memsys.lines_of_access t.ms ~addr:e.maddr ~width:w)
          | _ -> ());
          Memsys.release_spec_entries t.ms ~rob_id:e.id
        end;
        if
          (e.dec.Decoded.is_cond_branch && not e.resolved)
          || (e.dec.Decoded.is_store && not e.has_maddr)
        then spec_above := true;
        incr k
      done
  | Config.Baseline | Config.Cleanupspec _ | Config.Stt _ | Config.Delay_on_miss
    ->
      ()

let commit_stage t =
  let n = ref 0 in
  let continue_ = ref true in
  while !continue_ && !n < t.cfg.commit_width do
    if t.rob_len = 0 then continue_ := false
    else begin
      let head = t.rob.(t.rob_head) in
      if head.status = Done && head.resolved then begin
        commit_entry t head;
        head.in_rob <- false;
        t.rob_head <-
          (let i = t.rob_head + 1 in
           if i >= Array.length t.rob then 0 else i);
        t.rob_len <- t.rob_len - 1;
        incr n;
        if head.dec.Decoded.kind = Decoded.Dexit then begin
          t.halted <- true;
          continue_ := false
        end
      end
      else continue_ := false
    end
  done

(* ------------------------------------------------------------------ *)
(* Main loop                                                           *)
(* ------------------------------------------------------------------ *)

let step_cycle t =
  t.cycle <- t.cycle + 1;
  Amulet_obs.Obs.incr t.perf.Perf.cycles;
  Amulet_obs.Obs.add t.perf.Perf.rob_occupancy t.rob_len;
  Memsys.tick t.ms ~now:t.cycle;
  apply_responses t;
  if stt_cfg t <> None then recompute_taints t;
  complete_stage t;
  expose_stage t;
  issue_stage t;
  fetch_stage t;
  commit_stage t;
  if t.cycle - t.last_commit_cycle > t.cfg.deadlock_cycles then begin
    t.fault <- Some "pipeline deadlock";
    t.halted <- true
  end

let run t : run_result =
  Amulet_obs.Obs.incr t.perf.Perf.runs;
  while (not t.halted) && t.fault = None && t.cycle < t.cfg.max_cycles do
    step_cycle t
  done;
  if (not t.halted) && t.fault = None then t.fault <- Some "cycle limit exceeded";
  (* post-exit drain: short-latency fills (exposes, L2 handshakes) land in
     the final state; memory-latency and MSHR-starved requests do not *)
  for _ = 1 to t.cfg.drain_cycles do
    t.cycle <- t.cycle + 1;
    Memsys.tick t.ms ~now:t.cycle
  done;
  {
    cycles = t.cycle;
    committed_insts = t.committed_insts;
    squashes = t.squashes;
    squashed_insts = t.squashed_insts;
    spec_issued = t.spec_issued;
    mispredicts = t.mispredicts;
    fault = t.fault;
  }

let branch_prediction_order t =
  let rec go k acc =
    if k < 0 then acc
    else go (k - 1) ((t.bp_pc.(k), t.bp_taken.(k), t.bp_tgt.(k)) :: acc)
  in
  go (t.bp_len - 1) []

let execution_order t = Array.to_list (Array.sub t.exec_buf 0 t.exec_len)
let cycles t = t.cycle
