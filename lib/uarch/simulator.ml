(** Simulator facade: the unit the AMuLeT executor drives.

    Owns the persistent microarchitectural state (caches, TLB, predictors)
    plus the committed architectural state, and runs flattened programs
    through the out-of-order pipeline.  Creation is deliberately heavyweight
    (structure allocation plus a synthetic warm-boot workload), standing in
    for gem5's multi-second process startup; the AMuLeT-Opt executor
    amortizes it by reusing one simulator across all inputs of a program,
    overwriting registers and memory in place (paper §3.2, C3). *)

open Amulet_isa
open Amulet_emu

type t = {
  cfg : Config.t;
  log : Event.log;
  metrics : Amulet_obs.Obs.t;
  perf : Perf.t;  (** counter handles resolved once, shared by all runs *)
  ms : Memsys.t;
  bp : Branch_pred.t;
  mdp : Mdp.t;
  mutable arch : State.t;
  mutable total_cycles : int;
  mutable total_insts : int;
  mutable runs : int;
  mutable pipe : Pipeline.t option;
      (** the reusable pipeline: built on first run, rewound with
          {!Pipeline.reset} for every run after *)
  mutable dec_cache : Decoded.t option;
      (** last decoded test program, keyed by physical equality of the flat;
          one slot suffices because executors run all inputs of a program
          back to back (the prime program has its own slot below) *)
  mutable prime_flat : Program.flat option;
  mutable prime_dec : Decoded.t option;
  mutable decodes : int;  (** programs decoded over this simulator's life *)
  m_decodes : Amulet_obs.Obs.counter;
  mutable orders_live : bool;
      (** order traces of the last run live in [pipe] (extracted lazily);
          false after a restore or a legacy-pipeline run *)
  mutable last_bpred_order : (int * bool * int) list;
      (** (pc, predicted taken, predicted target) of the last run, when not
          [orders_live] *)
  mutable last_exec_order : int list;
      (** PCs in execution order (incl. wrong-path) of the last run, when
          not [orders_live] *)
}

type run_stats = {
  cycles : int;
  committed_insts : int;
  squashes : int;
  squashed_insts : int;
  spec_issued : int;
  mispredicts : int;
  fault : string option;
}

(* ------------------------------------------------------------------ *)
(* Warm boot (the synthetic startup workload)                          *)
(* ------------------------------------------------------------------ *)

(* A boot program exercising the whole core: dependent ALU chains, memory
   traffic and branches — the simulator analogue of gem5 initializing Ruby,
   loading the binary and warming its event queues. *)
let boot_program ~insts =
  let body = ref [] in
  let n = max 16 (insts / 8) in
  for i = n downto 1 do
    let disp = i * 8 mod 2048 in
    body :=
      Inst.Binop (Inst.Add, Width.W64, Operand.Reg Reg.RAX, Operand.Imm (Int64.of_int i))
      :: Inst.Mov (Width.W64, Operand.mem ~disp Reg.sandbox_base, Operand.Reg Reg.RAX)
      :: Inst.Mov (Width.W64, Operand.Reg Reg.RBX, Operand.mem ~disp Reg.sandbox_base)
      :: Inst.Binop (Inst.Xor, Width.W64, Operand.Reg Reg.RCX, Operand.Reg Reg.RBX)
      :: Inst.Cmp (Width.W64, Operand.Reg Reg.RCX, Operand.Imm 0L)
      :: Inst.Setcc (Cond.NZ, Operand.Reg Reg.RDX)
      :: Inst.Shift (Inst.Shl, Width.W64, Operand.Reg Reg.RDX, 1)
      :: Inst.Unop (Inst.Inc, Width.W64, Operand.Reg Reg.RSI)
      :: !body
  done;
  Program.flatten (Program.make [ { Program.label = "boot"; body = !body } ])

let default_boot_insts = 20_000

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

let finish_run t ~cycles ~committed_insts =
  t.total_cycles <- t.total_cycles + cycles;
  t.total_insts <- t.total_insts + committed_insts;
  t.runs <- t.runs + 1;
  (* drain per-run transient state; persistent state (caches, predictors)
     survives for the next run *)
  Memsys.reset_transient t.ms |> ignore

(* The original per-run path: build a fresh legacy pipeline (and throw it
   away).  Kept as the benchmark baseline and differential-testing oracle. *)
let run_flat_legacy t flat : run_stats =
  let p =
    Pipeline_legacy.create ~perf:t.perf t.cfg t.ms t.bp t.mdp t.log t.arch flat
  in
  let r = Pipeline_legacy.run p in
  t.orders_live <- false;
  t.last_bpred_order <- Pipeline_legacy.branch_prediction_order p;
  t.last_exec_order <- Pipeline_legacy.execution_order p;
  finish_run t ~cycles:r.Pipeline_legacy.cycles
    ~committed_insts:r.Pipeline_legacy.committed_insts;
  {
    cycles = r.Pipeline_legacy.cycles;
    committed_insts = r.Pipeline_legacy.committed_insts;
    squashes = r.Pipeline_legacy.squashes;
    squashed_insts = r.Pipeline_legacy.squashed_insts;
    spec_issued = r.Pipeline_legacy.spec_issued;
    mispredicts = r.Pipeline_legacy.mispredicts;
    fault = r.Pipeline_legacy.fault;
  }

(* The hot path: rewind the persistent pipeline over a pre-decoded program. *)
let run_decoded t (dec : Decoded.t) : run_stats =
  let p =
    match t.pipe with
    | Some p -> p
    | None ->
        let p = Pipeline.create ~perf:t.perf t.cfg t.ms t.bp t.mdp t.log t.arch dec in
        t.pipe <- Some p;
        p
  in
  Pipeline.reset p ~arch:t.arch dec;
  let r = Pipeline.run p in
  t.orders_live <- true;
  finish_run t ~cycles:r.Pipeline.cycles ~committed_insts:r.Pipeline.committed_insts;
  {
    cycles = r.Pipeline.cycles;
    committed_insts = r.Pipeline.committed_insts;
    squashes = r.Pipeline.squashes;
    squashed_insts = r.Pipeline.squashed_insts;
    spec_issued = r.Pipeline.spec_issued;
    mispredicts = r.Pipeline.mispredicts;
    fault = r.Pipeline.fault;
  }

let note_decode t =
  t.decodes <- t.decodes + 1;
  Amulet_obs.Obs.incr t.m_decodes

(* Decode [flat] once per program: repeat runs of the same flat (every input
   of a test case) hit the cache. *)
let decode_for t flat =
  match t.dec_cache with
  | Some d when Decoded.flat d == flat -> d
  | _ ->
      let d = Decoded.decode flat in
      t.dec_cache <- Some d;
      note_decode t;
      d

let run_flat t flat : run_stats =
  if t.cfg.Config.legacy_hot_loop then run_flat_legacy t flat
  else run_decoded t (decode_for t flat)

(** Create a simulator.  [boot_insts > 0] runs the synthetic warm-boot
    workload, making creation cost realistic (AMuLeT-Naive pays it per
    input; AMuLeT-Opt once per test program). *)
let create ?(metrics = Amulet_obs.Obs.noop) ?(boot_insts = default_boot_insts)
    ?(pages = 1) (cfg : Config.t) =
  let log = Event.create () in
  let t =
    {
      cfg;
      log;
      metrics;
      perf = Perf.create metrics;
      ms = Memsys.create ~metrics cfg log;
      bp =
        Branch_pred.create ~metrics ~history_bits:cfg.bp_history_bits
          ~table_bits:cfg.bp_table_bits ~btb_bits:cfg.btb_bits ();
      mdp = Mdp.create ~bits:cfg.mdp_bits;
      arch = State.create ~pages ();
      total_cycles = 0;
      total_insts = 0;
      runs = 0;
      pipe = None;
      dec_cache = None;
      prime_flat = None;
      prime_dec = None;
      decodes = 0;
      m_decodes = Amulet_obs.Obs.counter metrics "engine.sim.decodes";
      orders_live = false;
      last_bpred_order = [];
      last_exec_order = [];
    }
  in
  if boot_insts > 0 then begin
    (* the boot workload is excluded from hardware counters: engines boot
       a different number of simulators (naive: many; pooled: one), and
       counting boot would make otherwise-identical campaigns diverge *)
    let was_enabled = Amulet_obs.Obs.is_enabled metrics in
    Amulet_obs.Obs.set_enabled metrics false;
    Fun.protect
      ~finally:(fun () -> Amulet_obs.Obs.set_enabled metrics was_enabled)
      (fun () ->
        let boot = boot_program ~insts:boot_insts in
        ignore (run_flat t boot);
        (* boot effects must not leak into the first test case *)
        Memsys.flush_caches t.ms;
        Branch_pred.reset t.bp;
        Mdp.reset t.mdp;
        t.arch <- State.create ~pages ())
  end;
  t

let config t = t.cfg
let log t = t.log
let metrics t = t.metrics
let arch_state t = t.arch

(* ------------------------------------------------------------------ *)
(* Test-case state management (the AMuLeT-Opt in-place overwrite)      *)
(* ------------------------------------------------------------------ *)

(** Overwrite registers and sandbox memory in place from [state] — the
    Opt-executor path that avoids restarting the simulator. *)
let load_state t (state : State.t) =
  Array.blit state.State.regs 0 t.arch.State.regs 0 (Array.length state.State.regs);
  t.arch.State.flags <- state.State.flags;
  Memory.blit ~src:state.State.mem ~dst:t.arch.State.mem

(** Run a test program to completion over the current architectural state. *)
let run t (flat : Program.flat) : run_stats = run_flat t flat

(* ------------------------------------------------------------------ *)
(* Cache priming                                                       *)
(* ------------------------------------------------------------------ *)

(** Base address of the priming region: disjoint from the sandbox but
    mapping onto the same L1 sets. *)
let prime_base = 0x10_0000

(** A program of plain loads that fills every L1D set with
    [ways]-per-set addresses from outside the sandbox (paper §3.2, C2:
    starting from fully-occupied sets makes both installs and evictions
    visible).  It costs [sets * ways] instructions, which is exactly the
    Opt executor's per-input simulation overhead the paper describes. *)
let prime_program (cfg : Config.t) =
  let body = ref [] in
  for way = cfg.l1d_ways - 1 downto 0 do
    for set = cfg.l1d_sets - 1 downto 0 do
      let addr = prime_base + (way * 0x1000) + (set * cfg.line_bytes) in
      body :=
        Inst.Mov
          (Width.W64, Operand.Reg Reg.R15, Operand.mem ~disp:addr Reg.R15)
        :: !body
    done
  done;
  Program.flatten (Program.make [ { Program.label = "prime"; body = !body } ])

(** Prime the L1D by running the fill program through the pipeline (the
    realistic path: it costs simulated instructions).  R15 is zeroed for
    absolute addressing and the TLB/L1I are reset afterwards via simulator
    hooks, as the real harness does. *)
(* The prime program is a pure function of the config: build and decode it
   once per simulator.  It keeps its own cache slot so that alternating
   prime/test runs (the Opt executor primes before every input) don't thrash
   the single-entry test-program slot. *)
let prime_decoded t =
  match t.prime_dec with
  | Some d -> d
  | None ->
      let flat = prime_program t.cfg in
      let d = Decoded.decode flat in
      t.prime_flat <- Some flat;
      t.prime_dec <- Some d;
      note_decode t;
      d

let prime_with_fills t =
  let saved_r15 = State.read_reg t.arch Reg.R15 in
  State.write_reg t.arch Reg.R15 0L;
  let stats =
    if t.cfg.Config.legacy_hot_loop then
      (* faithful baseline: the original rebuilt the fill program per call *)
      run_flat_legacy t (prime_program t.cfg)
    else run_decoded t (prime_decoded t)
  in
  State.write_reg t.arch Reg.R15 saved_r15;
  Memsys.reset_tlb t.ms;
  Memsys.reset_l1i t.ms;
  stats

(** Prime by direct invalidation (the simulator hook used for CleanupSpec
    and SpecLFB in §3.5): clean caches, no simulated instructions. *)
let prime_with_flush t = Memsys.flush_caches t.ms

(* ------------------------------------------------------------------ *)
(* Microarchitectural state extraction                                 *)
(* ------------------------------------------------------------------ *)

let l1d_tags t = Memsys.l1d_tags t.ms
let l1i_tags t = Memsys.l1i_tags t.ms
let tlb_pages t = Memsys.tlb_pages t.ms

let bp_state t =
  Array.append (Branch_pred.state_words t.bp) (Mdp.state_words t.mdp)

let access_order t = Memsys.access_order t.ms
let clear_access_order t = Memsys.clear_access_order t.ms

(* Order traces are materialized lazily from the persistent pipeline's
   scratch buffers: only utrace formats that actually observe ordering pay
   for the list construction. *)
let branch_prediction_order t =
  if t.orders_live then
    match t.pipe with Some p -> Pipeline.branch_prediction_order p | None -> []
  else t.last_bpred_order

let execution_order t =
  if t.orders_live then
    match t.pipe with Some p -> Pipeline.execution_order p | None -> []
  else t.last_exec_order

(* ------------------------------------------------------------------ *)
(* Predictor context snapshots (violation validation, §3.2)            *)
(* ------------------------------------------------------------------ *)

type context = {
  ctx_bp : Branch_pred.snapshot;
  ctx_mdp : Mdp.snapshot;
  ctx_ms : Memsys.snapshot;
}

let snapshot_context t =
  {
    ctx_bp = Branch_pred.snapshot t.bp;
    ctx_mdp = Mdp.snapshot t.mdp;
    ctx_ms = Memsys.snapshot t.ms;
  }

let restore_context t ctx =
  Branch_pred.restore t.bp ctx.ctx_bp;
  Mdp.restore t.mdp ctx.ctx_mdp;
  Memsys.restore t.ms ctx.ctx_ms

(* ------------------------------------------------------------------ *)
(* Full checkpoints (the pooled engine's boot-state reuse)             *)
(* ------------------------------------------------------------------ *)

(** A full post-boot checkpoint: microarchitectural context plus the
    committed architectural state (registers, flags, memory image).
    Restoring one is equivalent to a fresh [create] with the same
    configuration, minus the boot workload — which is exactly how the
    pooled execution engine amortizes simulator startup. *)
type snapshot = {
  s_ctx : context;
  s_regs : State.reg_snapshot;
  s_mem : Memory.t;  (** private copy, never aliased by the live state *)
}

let snapshot t =
  {
    s_ctx = snapshot_context t;
    s_regs = State.snapshot_regs t.arch;
    s_mem = Memory.copy t.arch.State.mem;
  }

let restore t (s : snapshot) =
  restore_context t s.s_ctx;
  State.restore_regs t.arch s.s_regs;
  Memory.blit ~src:s.s_mem ~dst:t.arch.State.mem;
  Memsys.reset_transient t.ms;
  Memsys.clear_access_order t.ms;
  t.orders_live <- false;
  t.last_bpred_order <- [];
  t.last_exec_order <- []

let reset_predictors t =
  Branch_pred.reset t.bp;
  Mdp.reset t.mdp

let flush_caches t = Memsys.flush_caches t.ms
let reset_tlb t = Memsys.reset_tlb t.ms
let reset_l1i t = Memsys.reset_l1i t.ms

(* cumulative counters (for throughput accounting) *)
let total_cycles t = t.total_cycles
let total_insts t = t.total_insts
let runs t = t.runs
let decodes t = t.decodes
