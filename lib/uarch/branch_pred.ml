(** Gshare branch direction predictor with a branch target buffer.

    The pattern history table (PHT) of 2-bit saturating counters is indexed
    by [pc XOR global history].  The BTB records targets of taken branches
    and is part of the branch-predictor-state microarchitectural trace
    format.  The global history register is updated speculatively at fetch
    and repaired on squash, so each predicted branch records the history it
    was fetched under. *)

type t = {
  history_bits : int;
  table : int array;  (** 2-bit counters, 0..3, init 1 (weakly not-taken) *)
  table_mask : int;
  btb_tags : int array;  (** -1 = empty *)
  btb_targets : int array;
  btb_mask : int;
  mutable history : int;  (** speculative global history *)
  m_predicts : Amulet_obs.Obs.counter;
  m_trains : Amulet_obs.Obs.counter;
}

let create ?(metrics = Amulet_obs.Obs.noop) ~history_bits ~table_bits
    ~btb_bits () =
  let table_size = 1 lsl table_bits in
  let btb_size = 1 lsl btb_bits in
  {
    history_bits;
    table = Array.make table_size 1;
    table_mask = table_size - 1;
    btb_tags = Array.make btb_size (-1);
    btb_targets = Array.make btb_size 0;
    btb_mask = btb_size - 1;
    history = 0;
    m_predicts = Amulet_obs.Obs.counter metrics "uarch.bp.predicts";
    m_trains = Amulet_obs.Obs.counter metrics "uarch.bp.trains";
  }

let history t = t.history

let pht_index t ~pc ~history = (pc lsr 2) lxor history land t.table_mask

(** Predict the direction of the branch at [pc] under the current
    speculative history. *)
let predict t ~pc =
  Amulet_obs.Obs.incr t.m_predicts;
  let idx = pht_index t ~pc ~history:t.history in
  t.table.(idx) >= 2

(** Predicted target from the BTB, if any (our fetch engine decodes direct
    targets itself; the BTB exists for the BP-state trace and target
    bookkeeping). *)
let btb_lookup t ~pc =
  let idx = (pc lsr 2) land t.btb_mask in
  if t.btb_tags.(idx) = pc then Some t.btb_targets.(idx) else None

(** Push a (speculative) outcome into the global history at fetch. *)
let speculate_history t ~taken =
  t.history <-
    ((t.history lsl 1) lor (if taken then 1 else 0))
    land ((1 lsl t.history_bits) - 1)

(** Restore the history register (squash recovery). *)
let set_history t h = t.history <- h

(** Train the PHT (at resolution, with the fetch-time history) and the BTB
    (with the actual target when taken). *)
let train t ~pc ~history ~taken ~target =
  Amulet_obs.Obs.incr t.m_trains;
  let idx = pht_index t ~pc ~history in
  let c = t.table.(idx) in
  t.table.(idx) <- (if taken then min 3 (c + 1) else max 0 (c - 1));
  if taken then begin
    let bidx = (pc lsr 2) land t.btb_mask in
    t.btb_tags.(bidx) <- pc;
    t.btb_targets.(bidx) <- target
  end

(* ------------------------------------------------------------------ *)
(* Snapshots (validation reruns) and the BP-state trace                *)
(* ------------------------------------------------------------------ *)

type snapshot = {
  snap_table : int array;
  snap_btb_tags : int array;
  snap_btb_targets : int array;
  snap_history : int;
}

let snapshot t =
  {
    snap_table = Array.copy t.table;
    snap_btb_tags = Array.copy t.btb_tags;
    snap_btb_targets = Array.copy t.btb_targets;
    snap_history = t.history;
  }

let restore t s =
  Array.blit s.snap_table 0 t.table 0 (Array.length t.table);
  Array.blit s.snap_btb_tags 0 t.btb_tags 0 (Array.length t.btb_tags);
  Array.blit s.snap_btb_targets 0 t.btb_targets 0 (Array.length t.btb_targets);
  t.history <- s.snap_history

(** Flat dump of all predictor state (the BP-state trace format). *)
let state_words t =
  Array.concat [ t.table; t.btb_tags; t.btb_targets; [| t.history |] ]

let reset t =
  Array.fill t.table 0 (Array.length t.table) 1;
  Array.fill t.btb_tags 0 (Array.length t.btb_tags) (-1);
  Array.fill t.btb_targets 0 (Array.length t.btb_targets) 0;
  t.history <- 0
