(** Simulator facade: the unit the AMuLeT executor drives.

    Owns the persistent microarchitectural state (caches, TLB, predictors)
    plus the committed architectural state, and runs flattened programs
    through the out-of-order pipeline.  Creation is deliberately heavyweight
    (structure allocation plus a synthetic warm-boot workload), standing in
    for gem5's multi-second process startup; executors amortize it by
    reusing one simulator across inputs (paper §3.2, C3) or — the pooled
    engine — by checkpointing the post-boot state once with {!snapshot} and
    rewinding with {!restore} instead of re-running the boot workload. *)

open Amulet_isa
open Amulet_emu

type t

type run_stats = {
  cycles : int;
  committed_insts : int;
  squashes : int;
  squashed_insts : int;  (** entries thrown away across all squashes *)
  spec_issued : int;  (** loads/stores issued while speculative *)
  mispredicts : int;
  fault : string option;
}
(** Per-run totals, derived from the pipeline's own deterministic counters
    (not the {!Amulet_obs} registry, which may be detached): the feedback
    signal coverage-guided generation keys on. *)

val default_boot_insts : int

val create :
  ?metrics:Amulet_obs.Obs.t -> ?boot_insts:int -> ?pages:int -> Config.t -> t
(** Create a simulator.  [boot_insts > 0] runs the synthetic warm-boot
    workload, making creation cost realistic (AMuLeT-Naive pays it per
    input; AMuLeT-Opt once per test program; the pooled engine once per
    executor lifetime).  [metrics] (default noop) receives the [uarch.*]
    hardware counters; the boot workload is excluded from them so that
    engines booting different numbers of simulators still accumulate
    identical counts.  Counting is trace-invisible. *)

val config : t -> Config.t
val log : t -> Event.log

val metrics : t -> Amulet_obs.Obs.t
(** The registry the simulator counts into ([Obs.noop] when none given). *)

val arch_state : t -> State.t

val load_state : t -> State.t -> unit
(** Overwrite registers and sandbox memory in place — the Opt-executor path
    that avoids restarting the simulator. *)

val run : t -> Program.flat -> run_stats
(** Run a test program to completion over the current architectural state. *)

val prime_base : int
(** Base address of the priming region: disjoint from the sandbox but
    mapping onto the same L1 sets. *)

val prime_with_fills : t -> run_stats
(** Prime the L1D by running a fill program through the pipeline (costs
    simulated instructions; resets TLB/L1I afterwards). *)

val prime_with_flush : t -> unit
(** Prime by direct invalidation (clean caches, no simulated work). *)

(** {2 Microarchitectural state extraction} *)

val l1d_tags : t -> int list
val l1i_tags : t -> int list
val tlb_pages : t -> int list
val bp_state : t -> int array
val access_order : t -> (int * int) list
val clear_access_order : t -> unit
val branch_prediction_order : t -> (int * bool * int) list
val execution_order : t -> int list

(** {2 Predictor/cache context snapshots (violation validation, §3.2)} *)

type context

val snapshot_context : t -> context
val restore_context : t -> context -> unit

(** {2 Full checkpoints (the pooled engine's boot-state reuse)} *)

type snapshot
(** A full post-boot checkpoint: microarchitectural context plus the
    committed architectural state.  Restoring is equivalent to a fresh
    [create] with the same configuration, minus the boot workload. *)

val snapshot : t -> snapshot
val restore : t -> snapshot -> unit

(** {2 Reset hooks} *)

val reset_predictors : t -> unit
val flush_caches : t -> unit
val reset_tlb : t -> unit
val reset_l1i : t -> unit

(** {2 Cumulative counters (throughput accounting; monotonic across
    restores)} *)

val total_cycles : t -> int
val total_insts : t -> int
val runs : t -> int

val decodes : t -> int
(** Programs decoded into the shared {!Amulet_isa.Decoded} cache over this
    simulator's lifetime (boot and prime programs included): with the cache
    working, this stays proportional to the number of distinct programs,
    not the number of inputs. *)
