(** Simulator configuration: structure sizes, latencies and the secure
    speculation countermeasure under test.

    Leakage amplification (paper §3.4) works by shrinking structures —
    [l1d_ways], [mshrs] — to raise contention; the Table 6 bench sweeps
    these knobs. *)

(** Per-defense configuration.  Each [patched_*] flag removes one of the
    implementation bugs that the paper's campaigns discovered in the
    artifact; the unpatched default reproduces the released implementation. *)

type invisispec_cfg = {
  iv_patched_eviction : bool;
      (** UV1 fix: speculative loads no longer trigger L1 replacements *)
}

type cleanupspec_cfg = {
  cs_patched_store_cleanup : bool;
      (** UV3 fix: record cleanup metadata for speculative stores *)
  cs_patched_split_cleanup : bool;
      (** UV4 fix: track both halves of line-crossing requests *)
}

type stt_cfg = {
  stt_patched_store_tlb : bool;
      (** KV3 fix: block TLB fills by tainted-address stores *)
}

type speclfb_cfg = {
  lfb_patched_first_load : bool;
      (** UV6 fix: do not clear [isReallyUnsafe] for the first speculative
          load in the load-store queue *)
}

type defense =
  | Baseline
  | Invisispec of invisispec_cfg
  | Cleanupspec of cleanupspec_cfg
  | Stt of stt_cfg
  | Speclfb of speclfb_cfg
  | Delay_on_miss
      (** selective delay: speculative loads that miss the L1 wait until
          they are safe (Sakalis et al.); hits proceed *)
  | Ghostminion
      (** strictness-ordered speculative buffer: like InvisiSpec, but
          speculative fills use dedicated MSHRs and a dedicated controller
          queue so younger speculative work can never delay older accesses
          (Ainsworth's fix for the speculative-interference attacks) *)

let defense_name = function
  | Baseline -> "baseline"
  | Invisispec _ -> "invisispec"
  | Cleanupspec _ -> "cleanupspec"
  | Stt _ -> "stt"
  | Speclfb _ -> "speclfb"
  | Delay_on_miss -> "delay-on-miss"
  | Ghostminion -> "ghostminion"

type t = {
  (* core *)
  fetch_width : int;
  issue_width : int;
  commit_width : int;
  rob_size : int;
  redirect_penalty : int;  (** cycles between mispredict resolution and refetch *)
  imul_latency : int;
  branch_latency : int;
      (** execute-stage latency of conditional branches; sets the size of the
          speculation window in which transient loads can issue *)
  (* memory system *)
  line_bytes : int;
  l1d_sets : int;
  l1d_ways : int;
  l1i_sets : int;
  l1i_ways : int;
  l2_sets : int;
  l2_ways : int;
  mshrs : int;
  l1_latency : int;
  l2_latency : int;
  mem_latency : int;
  queue_bandwidth : int;
      (** L1D controller queue items processed per cycle; the queue is
          in-order, so a blocked head stalls everything behind it *)
  nl_prefetcher : bool;
      (** next-line L1D prefetcher, trained by every load (including
          speculative ones) — the "new microarchitectural feature" study of
          the paper's §5.2: prefetches install unconditionally, so they can
          launder transient access patterns past an otherwise secure
          defense *)
  tlb_entries : int;
  (* predictors *)
  bp_history_bits : int;
  bp_table_bits : int;  (** log2 of PHT entries *)
  btb_bits : int;  (** log2 of BTB entries *)
  mdp_bits : int;  (** log2 of memory-dependence predictor entries *)
  (* CleanupSpec: cycles the cache controller is busy per cleanup (the
     unXpec timing channel, KV2) *)
  cleanup_latency : int;
  drain_cycles : int;
      (** memory-system cycles simulated after the test's Exit commits:
          long enough for ordinary expose/fill handshakes to land, shorter
          than a memory fetch, so MSHR-starved requests (the UV2 observable)
          still miss the final-state snapshot *)
  (* safety *)
  max_cycles : int;
  deadlock_cycles : int;
  defense : defense;
  legacy_hot_loop : bool;
      (** run the pre-optimization pipeline ({!Pipeline_legacy}): the
          benchmark baseline and differential-testing oracle; trace-identical
          to the optimized hot loop, only slower *)
}

let default =
  {
    fetch_width = 4;
    issue_width = 4;
    commit_width = 4;
    rob_size = 64;
    redirect_penalty = 2;
    imul_latency = 3;
    branch_latency = 4;
    line_bytes = 64;
    l1d_sets = 64;
    l1d_ways = 8;
    l1i_sets = 64;
    l1i_ways = 8;
    l2_sets = 512;
    l2_ways = 16;
    mshrs = 256;
    l1_latency = 2;
    l2_latency = 12;
    mem_latency = 60;
    queue_bandwidth = 16;
    nl_prefetcher = false;
    tlb_entries = 64;
    bp_history_bits = 10;
    bp_table_bits = 10;
    btb_bits = 8;
    mdp_bits = 8;
    cleanup_latency = 8;
    drain_cycles = 20;
    max_cycles = 200_000;
    deadlock_cycles = 10_000;
    defense = Baseline;
    legacy_hot_loop = false;
  }

let with_defense defense t = { t with defense }

(** Amplification helper: shrink contended structures (paper §3.4). *)
let amplified ?(l1d_ways = default.l1d_ways) ?(mshrs = default.mshrs) t =
  { t with l1d_ways; mshrs }

let l1d_bytes t = t.l1d_sets * t.l1d_ways * t.line_bytes

let pp fmt t =
  Format.fprintf fmt
    "%s: L1D %d sets x %d ways, %d MSHRs, ROB %d, TLB %d entries"
    (defense_name t.defense) t.l1d_sets t.l1d_ways t.mshrs t.rob_size
    t.tlb_entries
