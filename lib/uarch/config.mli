(** Simulator configuration: structure sizes, latencies and the secure
    speculation countermeasure under test.

    The record fields are exposed because defense presets, the bench harness
    and the CLI all build configurations by functional update
    ([{ default with ... }]). *)

type invisispec_cfg = {
  iv_patched_eviction : bool;
      (** UV1 fix: speculative loads no longer trigger L1 replacements *)
}

type cleanupspec_cfg = {
  cs_patched_store_cleanup : bool;
      (** UV3 fix: record cleanup metadata for speculative stores *)
  cs_patched_split_cleanup : bool;
      (** UV4 fix: track both halves of line-crossing requests *)
}

type stt_cfg = {
  stt_patched_store_tlb : bool;
      (** KV3 fix: block TLB fills by tainted-address stores *)
}

type speclfb_cfg = {
  lfb_patched_first_load : bool;
      (** UV6 fix: do not clear [isReallyUnsafe] for the first speculative
          load in the load-store queue *)
}

type defense =
  | Baseline
  | Invisispec of invisispec_cfg
  | Cleanupspec of cleanupspec_cfg
  | Stt of stt_cfg
  | Speclfb of speclfb_cfg
  | Delay_on_miss
  | Ghostminion

val defense_name : defense -> string

type t = {
  (* core *)
  fetch_width : int;
  issue_width : int;
  commit_width : int;
  rob_size : int;
  redirect_penalty : int;
  imul_latency : int;
  branch_latency : int;
  (* memory system *)
  line_bytes : int;
  l1d_sets : int;
  l1d_ways : int;
  l1i_sets : int;
  l1i_ways : int;
  l2_sets : int;
  l2_ways : int;
  mshrs : int;
  l1_latency : int;
  l2_latency : int;
  mem_latency : int;
  queue_bandwidth : int;
  nl_prefetcher : bool;
  tlb_entries : int;
  (* predictors *)
  bp_history_bits : int;
  bp_table_bits : int;
  btb_bits : int;
  mdp_bits : int;
  cleanup_latency : int;
  drain_cycles : int;
  (* safety *)
  max_cycles : int;
  deadlock_cycles : int;
  defense : defense;
  legacy_hot_loop : bool;
      (** run the pre-optimization pipeline ({!Pipeline_legacy}): the
          benchmark baseline and differential-testing oracle; trace-identical
          to the optimized hot loop, only slower *)
}

val default : t
val with_defense : defense -> t -> t

val amplified : ?l1d_ways:int -> ?mshrs:int -> t -> t
(** Amplification helper: shrink contended structures (paper §3.4). *)

val l1d_bytes : t -> int
val pp : Format.formatter -> t -> unit
