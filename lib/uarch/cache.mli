(** Set-associative cache tag array with true-LRU replacement.  Only tags
    and replacement state are modeled: the cache determines timing and the
    final-state trace, never values. *)

type t

val create :
  ?metrics:Amulet_obs.Obs.t ->
  name:string ->
  sets:int ->
  ways:int ->
  line_bytes:int ->
  unit ->
  t
(** [metrics] (default {!Amulet_obs.Obs.noop}) receives
    [uarch.<name>.hits/misses/evictions] counters.  Counting is
    trace-invisible: it never changes tag or replacement state. *)

val line_of : t -> int -> int
(** Line-aligned address containing the byte address. *)

val set_of : t -> int -> int

val probe : t -> int -> bool
(** Presence check without touching replacement state. *)

val touch : t -> int -> bool
(** Presence check; updates LRU on hit. *)

val has_free_way : t -> int -> bool

val victim_of : t -> int -> int option
(** The line an install would evict (LRU victim); [None] if a way is free.
    Pure (gem5 Ruby's [cacheProbe]). *)

val install : t -> int -> int option
(** Install a line; returns the evicted victim, if any. *)

val invalidate : t -> int -> bool

val force_replacement : t -> int -> int option
(** Evict the LRU victim of the line's set without installing anything
    (models InvisiSpec's UV1 bug). *)

val tags : t -> int list
(** All valid line addresses, sorted — the final-state trace. *)

val reset : t -> unit
val occupancy : t -> int

type snapshot

val snapshot : t -> snapshot
val restore : t -> snapshot -> unit

val pp : Format.formatter -> t -> unit
