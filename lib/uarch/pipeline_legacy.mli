(** Pre-optimization snapshot of the out-of-order core: the list-ROB,
    allocate-per-dispatch hot loop kept as the benchmark baseline and as a
    differential-testing oracle for the optimized {!Pipeline}.  Selected via
    [Config.legacy_hot_loop]; behaviour (traces, counters, faults) is
    required to match {!Pipeline} bit for bit. *)

open Amulet_isa
open Amulet_emu

type t

type run_result = {
  cycles : int;
  committed_insts : int;
  squashes : int;
  squashed_insts : int;  (** entries thrown away across all squashes *)
  spec_issued : int;  (** loads/stores issued while speculative *)
  mispredicts : int;
  fault : string option;
}

val create :
  ?perf:Perf.t ->
  Config.t -> Memsys.t -> Branch_pred.t -> Mdp.t -> Event.log -> State.t ->
  Program.flat -> t
(** [perf] (default {!Perf.noop}) is the resolved hardware-counter bundle;
    counting never affects simulated behaviour. *)

val run : t -> run_result
(** Run to completion (Exit, fault, or cycle limit), then drain. *)

val branch_prediction_order : t -> (int * bool * int) list
(** (pc, predicted taken, predicted target), oldest first. *)

val execution_order : t -> int list
(** PCs in execution order, including wrong-path instructions. *)

val cycles : t -> int
