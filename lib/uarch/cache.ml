(** Set-associative cache tag array with true-LRU replacement.

    Only tags and replacement state are modeled: data always lives in the
    simulator's architectural memory image, so the cache determines {e
    timing} and the {e final-state microarchitectural trace}, never values.
    Addresses are byte addresses; lines are identified by their line-aligned
    address.

    The representation is structure-of-arrays (flat [tags]/[valid]/[lru]
    arrays indexed by [set * ways + way]) plus an incrementally-maintained
    list of the valid way indices, so snapshot and restore both run in
    O(occupancy) rather than O(capacity) — the pooled execution engine
    snapshots the cache context once per input. *)

type t = {
  name : string;
  sets : int;
  ways : int;
  line_bytes : int;
  tags_a : int array;  (** [tags_a.(set * ways + way)] *)
  valid_a : bool array;
  lru_a : int array;
  valid_list : int array;
      (** the first [n_valid] slots hold the flat indices of the valid ways,
          in no particular order — lets snapshots run in O(occupancy) *)
  pos_a : int array;  (** way index -> its slot in [valid_list] (when valid) *)
  mutable n_valid : int;
  mutable tick : int;  (** LRU clock *)
  m_hits : Amulet_obs.Obs.counter;
  m_misses : Amulet_obs.Obs.counter;
  m_evictions : Amulet_obs.Obs.counter;
}

let create ?(metrics = Amulet_obs.Obs.noop) ~name ~sets ~ways ~line_bytes () =
  assert (sets > 0 && ways > 0);
  assert (line_bytes land (line_bytes - 1) = 0);
  let prefix = "uarch." ^ String.lowercase_ascii name in
  {
    name;
    sets;
    ways;
    line_bytes;
    tags_a = Array.make (sets * ways) 0;
    valid_a = Array.make (sets * ways) false;
    lru_a = Array.make (sets * ways) 0;
    valid_list = Array.make (sets * ways) 0;
    pos_a = Array.make (sets * ways) 0;
    n_valid = 0;
    tick = 0;
    m_hits = Amulet_obs.Obs.counter metrics (prefix ^ ".hits");
    m_misses = Amulet_obs.Obs.counter metrics (prefix ^ ".misses");
    m_evictions = Amulet_obs.Obs.counter metrics (prefix ^ ".evictions");
  }

(** Line-aligned address containing byte address [addr]. *)
let line_of t addr = addr land lnot (t.line_bytes - 1)

let set_of t line = line / t.line_bytes mod t.sets

let next_tick t =
  t.tick <- t.tick + 1;
  t.tick

(* valid-way index maintenance: every [valid_a] transition goes through
   these so [n_valid]/[valid_list] always mirror the valid bits *)
let idx_add t i =
  t.valid_list.(t.n_valid) <- i;
  t.pos_a.(i) <- t.n_valid;
  t.n_valid <- t.n_valid + 1

let idx_remove t i =
  let p = t.pos_a.(i) in
  let last = t.valid_list.(t.n_valid - 1) in
  t.valid_list.(p) <- last;
  t.pos_a.(last) <- p;
  t.n_valid <- t.n_valid - 1

(* index of [line]'s way within its set, or -1 *)
let find_idx t line =
  let base = set_of t line * t.ways in
  let rec go i =
    if i >= t.ways then -1
    else if t.valid_a.(base + i) && t.tags_a.(base + i) = line then base + i
    else go (i + 1)
  in
  go 0

(* first free (invalid) way index within the set of [line], or -1 *)
let free_idx t line =
  let base = set_of t line * t.ways in
  let rec go i =
    if i >= t.ways then -1
    else if not t.valid_a.(base + i) then base + i
    else go (i + 1)
  in
  go 0

(* LRU victim index within the full set of [line]: min lru, earliest way on
   ties (strict [<] scanning from way 0) *)
let victim_idx t line =
  let base = set_of t line * t.ways in
  let victim = ref base in
  for i = base + 1 to base + t.ways - 1 do
    if t.lru_a.(i) < t.lru_a.(!victim) then victim := i
  done;
  !victim

(** Is the line present? (no replacement-state update) *)
let probe t line = find_idx t line >= 0

(** Is the line present? Updates LRU on hit. *)
let touch t line =
  let i = find_idx t line in
  if i >= 0 then begin
    t.lru_a.(i) <- next_tick t;
    Amulet_obs.Obs.incr t.m_hits;
    true
  end
  else begin
    Amulet_obs.Obs.incr t.m_misses;
    false
  end

(** Does the set of [line] have an invalid (free) way? *)
let has_free_way t line = free_idx t line >= 0

(** The line that would be evicted to make room for [line] (LRU victim), or
    [None] if a free way exists.  Does not modify state (gem5 Ruby's
    [cacheProbe]). *)
let victim_of t line =
  if free_idx t line >= 0 then None else Some t.tags_a.(victim_idx t line)

(** Install [line], evicting the LRU victim if the set is full.  Returns the
    evicted line, if any.  Installing an already-present line just refreshes
    its LRU state. *)
let install t line =
  let i = find_idx t line in
  if i >= 0 then begin
    t.lru_a.(i) <- next_tick t;
    None
  end
  else begin
    let free = free_idx t line in
    let target, evicted =
      if free >= 0 then free, None
      else
        let v = victim_idx t line in
        v, Some t.tags_a.(v)
    in
    if free >= 0 then idx_add t target;
    t.tags_a.(target) <- line;
    t.valid_a.(target) <- true;
    t.lru_a.(target) <- next_tick t;
    if evicted <> None then Amulet_obs.Obs.incr t.m_evictions;
    evicted
  end

(** Remove [line] if present; returns whether it was present. *)
let invalidate t line =
  let i = find_idx t line in
  if i >= 0 then begin
    t.valid_a.(i) <- false;
    idx_remove t i;
    true
  end
  else false

(** Evict the LRU victim of [line]'s set (without installing anything);
    returns the evicted line.  This models the InvisiSpec implementation bug
    UV1, where a speculative miss on a full set triggers an L1 replacement
    even though no line is installed. *)
let force_replacement t line =
  if free_idx t line >= 0 then None
  else begin
    let v = victim_idx t line in
    t.valid_a.(v) <- false;
    idx_remove t v;
    Amulet_obs.Obs.incr t.m_evictions;
    Some t.tags_a.(v)
  end

(** All valid line addresses, sorted (the final-state trace). *)
let tags t =
  let acc = ref [] in
  for i = Array.length t.valid_a - 1 downto 0 do
    if t.valid_a.(i) then acc := t.tags_a.(i) :: !acc
  done;
  List.sort compare !acc

let reset t =
  Array.fill t.valid_a 0 (Array.length t.valid_a) false;
  t.n_valid <- 0;
  t.tick <- 0

let occupancy t = List.length (tags t)

(* ------------------------------------------------------------------ *)
(* Snapshots (validation reruns restore the exact cache context)       *)
(* ------------------------------------------------------------------ *)

(* Sparse: only the valid ways are captured, so the cost is proportional to
   occupancy, not capacity (the pooled engine snapshots every input; a
   mostly-empty L2 would otherwise dominate the per-input overhead). *)
type snapshot = {
  snap_idx : int array;  (** flat indices of the valid ways *)
  snap_tags : int array;  (** parallel to [snap_idx] *)
  snap_lru : int array;  (** parallel to [snap_idx] *)
  snap_tick : int;
}

let snapshot t : snapshot =
  let n = t.n_valid in
  let snap_idx = Array.make n 0 in
  let snap_tags = Array.make n 0 in
  let snap_lru = Array.make n 0 in
  for k = 0 to n - 1 do
    let i = t.valid_list.(k) in
    snap_idx.(k) <- i;
    snap_tags.(k) <- t.tags_a.(i);
    snap_lru.(k) <- t.lru_a.(i)
  done;
  { snap_idx; snap_tags; snap_lru; snap_tick = t.tick }

let restore t (s : snapshot) =
  for k = 0 to t.n_valid - 1 do
    t.valid_a.(t.valid_list.(k)) <- false
  done;
  t.n_valid <- 0;
  for k = 0 to Array.length s.snap_idx - 1 do
    let i = s.snap_idx.(k) in
    t.valid_a.(i) <- true;
    t.tags_a.(i) <- s.snap_tags.(k);
    t.lru_a.(i) <- s.snap_lru.(k);
    idx_add t i
  done;
  t.tick <- s.snap_tick

let pp fmt t =
  Format.fprintf fmt "%s(%dx%d): [%a]" t.name t.sets t.ways
    (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f " ")
       (fun f l -> Format.fprintf f "0x%x" l))
    (tags t)
