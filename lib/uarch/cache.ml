(** Set-associative cache tag array with true-LRU replacement.

    Only tags and replacement state are modeled: data always lives in the
    simulator's architectural memory image, so the cache determines {e
    timing} and the {e final-state microarchitectural trace}, never values.
    Addresses are byte addresses; lines are identified by their line-aligned
    address.

    The representation is structure-of-arrays (flat [tags]/[valid]/[lru]
    arrays indexed by [set * ways + way]) so that snapshots are three
    [Array.copy] calls and restores are three [Array.blit]s — the cheap
    copy-on-restore the pooled execution engine depends on. *)

type t = {
  name : string;
  sets : int;
  ways : int;
  line_bytes : int;
  tags_a : int array;  (** [tags_a.(set * ways + way)] *)
  valid_a : bool array;
  lru_a : int array;
  mutable tick : int;  (** LRU clock *)
  m_hits : Amulet_obs.Obs.counter;
  m_misses : Amulet_obs.Obs.counter;
  m_evictions : Amulet_obs.Obs.counter;
}

let create ?(metrics = Amulet_obs.Obs.noop) ~name ~sets ~ways ~line_bytes () =
  assert (sets > 0 && ways > 0);
  assert (line_bytes land (line_bytes - 1) = 0);
  let prefix = "uarch." ^ String.lowercase_ascii name in
  {
    name;
    sets;
    ways;
    line_bytes;
    tags_a = Array.make (sets * ways) 0;
    valid_a = Array.make (sets * ways) false;
    lru_a = Array.make (sets * ways) 0;
    tick = 0;
    m_hits = Amulet_obs.Obs.counter metrics (prefix ^ ".hits");
    m_misses = Amulet_obs.Obs.counter metrics (prefix ^ ".misses");
    m_evictions = Amulet_obs.Obs.counter metrics (prefix ^ ".evictions");
  }

(** Line-aligned address containing byte address [addr]. *)
let line_of t addr = addr land lnot (t.line_bytes - 1)

let set_of t line = line / t.line_bytes mod t.sets

let next_tick t =
  t.tick <- t.tick + 1;
  t.tick

(* index of [line]'s way within its set, or -1 *)
let find_idx t line =
  let base = set_of t line * t.ways in
  let rec go i =
    if i >= t.ways then -1
    else if t.valid_a.(base + i) && t.tags_a.(base + i) = line then base + i
    else go (i + 1)
  in
  go 0

(* first free (invalid) way index within the set of [line], or -1 *)
let free_idx t line =
  let base = set_of t line * t.ways in
  let rec go i =
    if i >= t.ways then -1
    else if not t.valid_a.(base + i) then base + i
    else go (i + 1)
  in
  go 0

(* LRU victim index within the full set of [line]: min lru, earliest way on
   ties (strict [<] scanning from way 0) *)
let victim_idx t line =
  let base = set_of t line * t.ways in
  let victim = ref base in
  for i = base + 1 to base + t.ways - 1 do
    if t.lru_a.(i) < t.lru_a.(!victim) then victim := i
  done;
  !victim

(** Is the line present? (no replacement-state update) *)
let probe t line = find_idx t line >= 0

(** Is the line present? Updates LRU on hit. *)
let touch t line =
  let i = find_idx t line in
  if i >= 0 then begin
    t.lru_a.(i) <- next_tick t;
    Amulet_obs.Obs.incr t.m_hits;
    true
  end
  else begin
    Amulet_obs.Obs.incr t.m_misses;
    false
  end

(** Does the set of [line] have an invalid (free) way? *)
let has_free_way t line = free_idx t line >= 0

(** The line that would be evicted to make room for [line] (LRU victim), or
    [None] if a free way exists.  Does not modify state (gem5 Ruby's
    [cacheProbe]). *)
let victim_of t line =
  if free_idx t line >= 0 then None else Some t.tags_a.(victim_idx t line)

(** Install [line], evicting the LRU victim if the set is full.  Returns the
    evicted line, if any.  Installing an already-present line just refreshes
    its LRU state. *)
let install t line =
  let i = find_idx t line in
  if i >= 0 then begin
    t.lru_a.(i) <- next_tick t;
    None
  end
  else begin
    let free = free_idx t line in
    let target, evicted =
      if free >= 0 then free, None
      else
        let v = victim_idx t line in
        v, Some t.tags_a.(v)
    in
    t.tags_a.(target) <- line;
    t.valid_a.(target) <- true;
    t.lru_a.(target) <- next_tick t;
    if evicted <> None then Amulet_obs.Obs.incr t.m_evictions;
    evicted
  end

(** Remove [line] if present; returns whether it was present. *)
let invalidate t line =
  let i = find_idx t line in
  if i >= 0 then begin
    t.valid_a.(i) <- false;
    true
  end
  else false

(** Evict the LRU victim of [line]'s set (without installing anything);
    returns the evicted line.  This models the InvisiSpec implementation bug
    UV1, where a speculative miss on a full set triggers an L1 replacement
    even though no line is installed. *)
let force_replacement t line =
  if free_idx t line >= 0 then None
  else begin
    let v = victim_idx t line in
    t.valid_a.(v) <- false;
    Amulet_obs.Obs.incr t.m_evictions;
    Some t.tags_a.(v)
  end

(** All valid line addresses, sorted (the final-state trace). *)
let tags t =
  let acc = ref [] in
  for i = Array.length t.valid_a - 1 downto 0 do
    if t.valid_a.(i) then acc := t.tags_a.(i) :: !acc
  done;
  List.sort compare !acc

let reset t =
  Array.fill t.valid_a 0 (Array.length t.valid_a) false;
  t.tick <- 0

let occupancy t = List.length (tags t)

(* ------------------------------------------------------------------ *)
(* Snapshots (validation reruns restore the exact cache context)       *)
(* ------------------------------------------------------------------ *)

type snapshot = {
  snap_tags : int array;
  snap_valid : bool array;
  snap_lru : int array;
  snap_tick : int;
}

let snapshot t : snapshot =
  {
    snap_tags = Array.copy t.tags_a;
    snap_valid = Array.copy t.valid_a;
    snap_lru = Array.copy t.lru_a;
    snap_tick = t.tick;
  }

let restore t (s : snapshot) =
  Array.blit s.snap_tags 0 t.tags_a 0 (Array.length s.snap_tags);
  Array.blit s.snap_valid 0 t.valid_a 0 (Array.length s.snap_valid);
  Array.blit s.snap_lru 0 t.lru_a 0 (Array.length s.snap_lru);
  t.tick <- s.snap_tick

let pp fmt t =
  Format.fprintf fmt "%s(%dx%d): [%a]" t.name t.sets t.ways
    (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f " ")
       (fun f l -> Format.fprintf f "0x%x" l))
    (tags t)
