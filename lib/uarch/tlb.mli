(** Fully-associative data TLB with LRU replacement; part of the default
    microarchitectural trace (how STT's KV3 leak becomes visible). *)

type t

val page_bits : int
val create : ?metrics:Amulet_obs.Obs.t -> entries:int -> unit -> t
(** [metrics] (default noop) receives [uarch.tlb.hits/misses] counters. *)

val page_of_addr : int -> int
val probe : t -> int -> bool

val access : t -> int -> [ `Hit | `Miss ]
(** Translate: hit updates LRU, miss installs (evicting the LRU victim). *)

val pages : t -> int list
(** Cached page numbers, sorted. *)

val reset : t -> unit

type snapshot

val snapshot : t -> snapshot
val restore : t -> snapshot -> unit
val pp : Format.formatter -> t -> unit
