(** Reaching definitions for registers and flags. *)

open Amulet_isa
module IntSet : Set.S with type elt = int

val entry_def : int
(** Pseudo definition site ([-1]) for the program-entry state. *)

type t

val analyze : Cfg.t -> t

val reg_defs : t -> int -> Reg.t -> IntSet.t
(** Definition sites that may reach the read of a register at an
    instruction index. *)

val flag_defs : t -> int -> IntSet.t
(** Definition sites that may reach a flags read at an instruction index. *)

val may_read_entry : t -> int -> Reg.t -> bool
(** True when the entry (pre-program) value of the register may reach its
    read at the given index. *)

val flags_entry_only : t -> int -> bool
(** True when a flags read at the index can only observe the entry flags —
    the predicate is constant. *)
