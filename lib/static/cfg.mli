(** Control-flow graph over a flattened program.

    Tolerates malformed control flow (cycles, dangling targets) so the lint
    can diagnose it rather than crash. *)

open Amulet_isa

type block = {
  id : int;
  start : int;  (** index of the first instruction *)
  stop : int;  (** one past the last instruction *)
  mutable succs : int list;  (** successor block ids *)
  mutable preds : int list;  (** predecessor block ids *)
}

type t = {
  flat : Program.flat;
  blocks : block array;
  block_of : int array;  (** instruction index -> owning block id *)
  rpo : int list;  (** reverse-postorder over blocks reachable from entry *)
}

val build : Program.flat -> t

val inst_succs : Program.flat -> int -> int list
(** Resolved successor instruction indices of the instruction at the given
    index (empty for [Exit] and unresolved/out-of-range branch targets). *)

val num_blocks : t -> int
val block : t -> int -> block
val block_of_inst : t -> int -> int

val unreachable : t -> int list
(** Blocks never reachable from the entry (dead code). *)

val is_dag : t -> bool
(** True when every reachable edge goes strictly forward (acyclic control
    flow, the shape the generator guarantees). *)

val pp : Format.formatter -> t -> unit
