(** Reaching definitions for registers and flags.

    The state maps every register (plus a pseudo-slot for the flags) to the
    set of instruction indices that may have produced its current value;
    {!entry_def} stands for the initial program state (registers are
    populated from the test input, so an entry definition is not an error in
    itself — the lint layers policy on top, e.g. reads of the scratch
    register or of never-written flags). *)

open Amulet_isa
module IntSet = Set.Make (Int)

(** Pseudo definition site for the program-entry state. *)
let entry_def = -1

let nslots = Reg.count + 1
let flags_slot = Reg.count

module L = struct
  type t = IntSet.t array option
  (* [None] is bottom (unreachable); [Some a] maps slot -> def sites. *)

  let bottom = None

  let join a b =
    match a, b with
    | None, x | x, None -> x
    | Some a, Some b -> Some (Array.init nslots (fun i -> IntSet.union a.(i) b.(i)))

  let equal a b =
    match a, b with
    | None, None -> true
    | Some a, Some b ->
        let ok = ref true in
        Array.iteri (fun i s -> if not (IntSet.equal s b.(i)) then ok := false) a;
        !ok
    | None, Some _ | Some _, None -> false
end

module Engine = Dataflow.Make (L)

type t = Engine.result

let transfer i inst st =
  match st with
  | None -> None
  | Some a ->
      let a = Array.copy a in
      List.iter (fun r -> a.(Reg.index r) <- IntSet.singleton i) (Inst.dest_regs inst);
      if Inst.writes_flags inst then a.(flags_slot) <- IntSet.singleton i;
      Some a

let analyze (cfg : Cfg.t) : t =
  let init = Some (Array.make nslots (IntSet.singleton entry_def)) in
  Engine.forward cfg ~init ~transfer

let defs_of st slot =
  match st with None -> IntSet.empty | Some a -> a.(slot)

(** Definition sites that may reach the read of [r] at instruction [i]. *)
let reg_defs (t : t) i r = defs_of t.Engine.before.(i) (Reg.index r)

(** Definition sites that may reach a flags read at instruction [i]. *)
let flag_defs (t : t) i = defs_of t.Engine.before.(i) flags_slot

(** True when the entry (pre-program) value of [r] may reach its read at
    [i]. *)
let may_read_entry (t : t) i r = IntSet.mem entry_def (reg_defs t i r)

(** True when a flags read at [i] can only observe the entry flags — no
    flag-writing instruction reaches it, so the predicate is constant. *)
let flags_entry_only (t : t) i =
  IntSet.equal (flag_defs t i) (IntSet.singleton entry_def)
