(** Symbolic input-taint propagation.

    This mirrors the dynamic policy of [Amulet_emu.Taint] — taint flows from
    every source operand (registers, loaded data, address registers, and
    flags when the instruction reads them) into every destination and into
    the flags when the instruction writes them — but abstracts the atom sets
    to a single bit.  Because every register and every sandbox word is an
    input atom at entry (cf. [Input.generate] and [Taint.init]), all
    registers start tainted and all loaded data is tainted; what makes the
    analysis useful are the {e kill} patterns the generator emits
    ([MOV r, imm], [XOR r, r], [SUB r, r]) and the {e bound} tracking
    ([AND r, mask], immediate moves, zero-extending narrow loads), which the
    sandbox-containment lint consumes.

    Abstract value: [tainted] — may the value depend on the test input —
    and [max] — an inclusive upper bound on the value as an unsigned
    integer, when one is known. *)

open Amulet_isa

type value = { tainted : bool; max : int option }

type state = { regs : value array; flags_tainted : bool }
(** [regs] is indexed by [Reg.index]. *)

let top = { tainted = true; max = None }

let join_value a b =
  {
    tainted = a.tainted || b.tainted;
    max =
      (match a.max, b.max with
      | Some x, Some y -> Some (max x y)
      | _, _ -> None);
  }

let equal_value a b = a.tainted = b.tainted && a.max = b.max

module L = struct
  type t = state option

  let bottom = None

  let join a b =
    match a, b with
    | None, x | x, None -> x
    | Some a, Some b ->
        Some
          {
            regs = Array.init Reg.count (fun i -> join_value a.regs.(i) b.regs.(i));
            flags_tainted = a.flags_tainted || b.flags_tainted;
          }

  let equal a b =
    match a, b with
    | None, None -> true
    | Some a, Some b ->
        a.flags_tainted = b.flags_tainted
        && Array.for_all2 equal_value a.regs b.regs
    | None, Some _ | Some _, None -> false
end

module Engine = Dataflow.Make (L)

type t = Engine.result

let reg_value st r = st.regs.(Reg.index r)

(** Bound of a value loaded/zero-extended at width [w]. *)
let width_bound w =
  match w with
  | Width.W64 -> None
  | w -> Some (Int64.to_int (Width.mask w))

let imm_bound v = if Int64.compare v 0L >= 0 then Some (Int64.to_int v) else None

(* Taint of the generic "data input" of the instruction, mirroring
   [Taint.step]'s [data_in]. *)
let data_in st inst =
  let src_taint =
    List.exists (fun r -> (reg_value st r).tainted) (Inst.source_regs inst)
  in
  let load_taint = Inst.is_load inst in
  let flag_taint = Inst.reads_flags inst && st.flags_tainted in
  src_taint || load_taint || flag_taint

let set st r v =
  let regs = Array.copy st.regs in
  regs.(Reg.index r) <- v;
  { st with regs }

let transfer _i inst st =
  match st with
  | None -> None
  | Some st ->
      let din = data_in st inst in
      let generic st =
        let st =
          List.fold_left
            (fun st r -> set st r { tainted = din; max = None })
            st (Inst.dest_regs inst)
        in
        if Inst.writes_flags inst then { st with flags_tainted = din } else st
      in
      let r =
        match inst with
        (* ---- taint kills and bounds ------------------------------- *)
        | Inst.Mov ((Width.W32 | Width.W64), Operand.Reg r, Operand.Imm v) ->
            set st r { tainted = false; max = imm_bound v }
        | Inst.Binop ((Inst.Xor | Inst.Sub), (Width.W32 | Width.W64),
                      Operand.Reg a, Operand.Reg b)
          when Reg.equal a b ->
            { (set st a { tainted = false; max = Some 0 }) with flags_tainted = false }
        | Inst.Binop (Inst.And, (Width.W32 | Width.W64), Operand.Reg r,
                      Operand.Imm m)
          when Int64.compare m 0L >= 0 ->
            let old = reg_value st r in
            let st' =
              set st r { tainted = old.tainted; max = Some (Int64.to_int m) }
            in
            { st' with flags_tainted = old.tainted }
        | Inst.Binop (Inst.And, Width.W64, Operand.Reg r, Operand.Imm _) ->
            (* negative mask: no unsigned bound, taint preserved *)
            let old = reg_value st r in
            let st' = set st r { old with max = None } in
            { st' with flags_tainted = old.tainted }
        (* ---- bounded writes --------------------------------------- *)
        | Inst.Movx (Inst.Zero, w, r, _) ->
            set st r { tainted = din; max = width_bound w }
        | Inst.Mov (Width.W32, Operand.Reg r, _) ->
            set st r { tainted = din; max = width_bound Width.W32 }
        | Inst.Setcc (_, Operand.Reg r) ->
            (* byte write merges into the old value *)
            let old = reg_value st r in
            set st r { tainted = old.tainted || din; max = None }
        | Inst.Mov ((Width.W8 | Width.W16), Operand.Reg r, _) ->
            let old = reg_value st r in
            set st r { tainted = old.tainted || din; max = None }
        (* ---- structure-preserving moves --------------------------- *)
        | Inst.Mov (Width.W64, Operand.Reg r, Operand.Reg s) ->
            set st r (reg_value st s)
        | Inst.Xchg (Width.W64, a, b) ->
            let va = reg_value st a and vb = reg_value st b in
            set (set st a vb) b va
        | Inst.Cmovcc (_, Width.W64, r, Operand.Reg s) ->
            let old = reg_value st r and src = reg_value st s in
            let v = join_value old src in
            set st r
              { v with tainted = v.tainted || st.flags_tainted }
        (* ---- everything else -------------------------------------- *)
        | _ -> generic st
      in
      Some r

let analyze (cfg : Cfg.t) : t =
  let init =
    Some { regs = Array.make Reg.count top; flags_tainted = false }
  in
  Engine.forward cfg ~init ~transfer

let state_before (t : t) i =
  match t.Engine.before.(i) with
  | Some st -> st
  | None -> { regs = Array.make Reg.count top; flags_tainted = true }

(** Abstract value of [r] just before instruction [i]. *)
let value_before t i r = reg_value (state_before t i) r

(** May the address of the memory operand of [i] depend on the input?
    Excludes the sandbox base register, whose value is pinned by the
    harness. *)
let address_tainted t i (m : Operand.mem) =
  let st = state_before t i in
  let reg_taint r =
    (not (Reg.equal r Reg.sandbox_base)) && (reg_value st r).tainted
  in
  reg_taint m.Operand.base
  || match m.Operand.index with Some r -> reg_taint r | None -> false

(** Is the flags state just before [i] input-dependent? *)
let flags_tainted_before t i = (state_before t i).flags_tainted
