(** Generic monotone-framework worklist dataflow engine over {!Cfg.t}.

    Guaranteed to terminate on arbitrary (even cyclic) graphs provided the
    lattice has finite height and the transfer functions are monotone. *)

open Amulet_isa

module type LATTICE = sig
  type t

  val bottom : t
  (** Identity of {!join}; the state of unreachable code. *)

  val join : t -> t -> t
  val equal : t -> t -> bool
end

module Make (L : LATTICE) : sig
  type result = {
    before : L.t array;  (** state on entry to instruction [i] *)
    after : L.t array;  (** state on exit of instruction [i] *)
  }

  val forward :
    Cfg.t -> init:L.t -> transfer:(int -> Inst.t -> L.t -> L.t) -> result
  (** [init] is the state at program entry; [transfer i inst st] the state
      after executing [inst] (at index [i]) in state [st]. *)

  val backward :
    Cfg.t -> init:L.t -> transfer:(int -> Inst.t -> L.t -> L.t) -> result
  (** [init] is the state at every exit; [transfer i inst st] the state
      before [inst] given state [st] after it.  [before]/[after] stay in
      program order: [before.(i)] holds just before [i] executes. *)
end
