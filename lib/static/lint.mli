(** Well-formedness lint for flattened programs.

    Errors are structural defects (unresolved/backward branches, invalid
    scales, sandbox-base writes, encoder-unrepresentable operand shapes);
    warnings flag suspicious-but-executable code (possible sandbox
    overflow, unmasked indices, scratch-register or never-written-flags
    reads, dead code) and never gate. *)

open Amulet_isa

type severity = Error | Warning

type diag = {
  code : string;  (** stable kebab-case diagnostic name *)
  severity : severity;
  index : int option;  (** offending instruction, when localized *)
  message : string;
}

type report = { diags : diag list; errors : int; warnings : int }

val ok : report -> bool
(** No errors (warnings allowed). *)

val default_sandbox_bytes : int
(** One 4 KiB page — the floor across bundled defense configurations. *)

val check : ?sandbox_bytes:int -> Program.flat -> report
val severity_name : severity -> string
val pp_diag : Format.formatter -> diag -> unit
val pp : Format.formatter -> report -> unit
