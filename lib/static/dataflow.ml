(** Generic monotone-framework dataflow engine.

    Instantiate {!Make} with a join-semilattice and run {!Make.forward} or
    {!Make.backward} over a {!Cfg.t}.  The engine iterates a block worklist
    (seeded in reverse-postorder for forward problems, postorder for backward
    ones) to a fixpoint, then exposes the per-instruction entry state.  With a
    finite-height lattice and monotone transfer functions termination is
    guaranteed even on cyclic graphs, so the passes stay total on programs the
    lint will reject anyway. *)

open Amulet_isa

module type LATTICE = sig
  type t

  val bottom : t
  (** Identity of {!join}; the state of unreachable code. *)

  val join : t -> t -> t
  val equal : t -> t -> bool
end

module Make (L : LATTICE) = struct
  type result = {
    before : L.t array;  (** state on entry to instruction [i] *)
    after : L.t array;  (** state on exit of instruction [i] *)
  }

  let instr_states cfg ~transfer ~block_in =
    let n = Program.length cfg.Cfg.flat in
    let before = Array.make (max n 1) L.bottom in
    let after = Array.make (max n 1) L.bottom in
    Array.iter
      (fun b ->
        let st = ref (block_in b.Cfg.id) in
        for i = b.Cfg.start to b.Cfg.stop - 1 do
          before.(i) <- !st;
          st := transfer i (Program.get cfg.Cfg.flat i) !st;
          after.(i) <- !st
        done)
      cfg.Cfg.blocks;
    { before; after }

  (** Forward analysis: [init] is the state at program entry; [transfer i
      inst st] is the state after executing [inst] (at index [i]) in state
      [st]. *)
  let forward (cfg : Cfg.t) ~(init : L.t) ~transfer : result =
    let nb = Cfg.num_blocks cfg in
    if nb = 0 then { before = [||]; after = [||] }
    else begin
      (* out-state of each block *)
      let out = Array.make nb L.bottom in
      let block_out bid st0 =
        let b = Cfg.block cfg bid in
        let st = ref st0 in
        for i = b.Cfg.start to b.Cfg.stop - 1 do
          st := transfer i (Program.get cfg.Cfg.flat i) !st
        done;
        !st
      in
      let block_in bid =
        let b = Cfg.block cfg bid in
        let st =
          List.fold_left (fun acc p -> L.join acc out.(p)) L.bottom b.Cfg.preds
        in
        if bid = 0 then L.join st init else st
      in
      let on_list = Array.make nb false in
      let work = Queue.create () in
      List.iter
        (fun b ->
          Queue.add b work;
          on_list.(b) <- true)
        cfg.Cfg.rpo;
      while not (Queue.is_empty work) do
        let bid = Queue.take work in
        on_list.(bid) <- false;
        let o = block_out bid (block_in bid) in
        if not (L.equal o out.(bid)) then begin
          out.(bid) <- o;
          List.iter
            (fun s ->
              if not on_list.(s) then begin
                Queue.add s work;
                on_list.(s) <- true
              end)
            (Cfg.block cfg bid).Cfg.succs
        end
      done;
      instr_states cfg ~transfer ~block_in
    end

  (** Backward analysis: [init] is the state at every program exit; [transfer
      i inst st] is the state before [inst] given state [st] after it.  In
      the {!result}, [before.(i)] is still indexed by program order:
      [before.(i)] is the fact holding just before [i] executes — i.e. the
      backward-flow output of [i]. *)
  let backward (cfg : Cfg.t) ~(init : L.t) ~transfer : result =
    let nb = Cfg.num_blocks cfg in
    if nb = 0 then { before = [||]; after = [||] }
    else begin
      (* in-state (in program order: fact before the first instruction) of
         each block, computed from the block's out-state *)
      let inv = Array.make nb L.bottom in
      let is_exit_block bid =
        let b = Cfg.block cfg bid in
        b.Cfg.succs = [] && b.Cfg.stop > b.Cfg.start
      in
      let block_out bid =
        let b = Cfg.block cfg bid in
        let st =
          List.fold_left (fun acc s -> L.join acc inv.(s)) L.bottom b.Cfg.succs
        in
        if is_exit_block bid || b.Cfg.succs = [] then L.join st init else st
      in
      let block_in bid st0 =
        let b = Cfg.block cfg bid in
        let st = ref st0 in
        for i = b.Cfg.stop - 1 downto b.Cfg.start do
          st := transfer i (Program.get cfg.Cfg.flat i) !st
        done;
        !st
      in
      let on_list = Array.make nb false in
      let work = Queue.create () in
      List.iter
        (fun b ->
          Queue.add b work;
          on_list.(b) <- true)
        (List.rev cfg.Cfg.rpo);
      while not (Queue.is_empty work) do
        let bid = Queue.take work in
        on_list.(bid) <- false;
        let i = block_in bid (block_out bid) in
        if not (L.equal i inv.(bid)) then begin
          inv.(bid) <- i;
          List.iter
            (fun p ->
              if not on_list.(p) then begin
                Queue.add p work;
                on_list.(p) <- true
              end)
            (Cfg.block cfg bid).Cfg.preds
        end
      done;
      (* per-instruction states, walking each block backward from its
         out-state *)
      let n = Program.length cfg.Cfg.flat in
      let before = Array.make (max n 1) L.bottom in
      let after = Array.make (max n 1) L.bottom in
      Array.iter
        (fun b ->
          let st = ref (block_out b.Cfg.id) in
          for i = b.Cfg.stop - 1 downto b.Cfg.start do
            after.(i) <- !st;
            st := transfer i (Program.get cfg.Cfg.flat i) !st;
            before.(i) <- !st
          done)
        cfg.Cfg.blocks;
      { before; after }
    end
end
