(** Combined static leakage report: the speculative-taint transmitter pass.

    A program is {e potentially leaky} when some instruction can transmit an
    input-dependent value through a μarch side channel {e within a contract
    trace class}.  Since every bundled contract observes the architectural
    PC trace and all architectural memory addresses, two inputs in the same
    class agree on every architecturally executed address — so the only
    within-class divergence sources are transient:

    - a memory access whose address may be input-tainted, executed under a
      mispredicted conditional branch (within the speculation window);
    - a load whose address may be input-tainted, executed while an older
      store is still in flight (store-bypass / Spectre-v4 exposure);
    - a conditional branch with input-tainted flags executed transiently
      (it redirects transient fetch, and hence the μarch access stream).

    A program with none of these is classified leak-free: no defense/contract
    pair in the repo can produce a violation on it, which is what makes
    [static_filter=screen] sound (cf. the soundness gate in the test suite —
    every curated reproducer must classify as potentially leaky).

    Architecturally-reachable tainted-address accesses are reported as
    {!arch_flows} for human consumption but do not make a program leaky. *)

open Amulet_isa

type site_kind = Load | Store | Rmw | Branch

type site = {
  index : int;
  kind : site_kind;
  transient : bool;  (** inside some conditional-branch speculation window *)
  bypass : bool;  (** load exposed to store-bypass *)
}

type t = {
  lint : Lint.report;
  window : int;
  windows : (int * int list) list;
      (** conditional branch index -> transiently reachable indices *)
  transmitters : site list;  (** speculative transmitter sites — the leaks *)
  arch_flows : int list;
      (** architecturally executed accesses with input-tainted addresses
          (pinned by the contract's address observations; informational) *)
  leaky : bool;
}

let kind_name = function
  | Load -> "load"
  | Store -> "store"
  | Rmw -> "rmw"
  | Branch -> "branch"

let analyze ?window ?sandbox_bytes (flat : Program.flat) : t =
  let cfg = Cfg.build flat in
  let lint = Lint.check ?sandbox_bytes flat in
  let taint = Taint_flow.analyze cfg in
  let spec = Spec_reach.analyze ?window cfg in
  let n = Program.length flat in
  let transmitters = ref [] and arch_flows = ref [] in
  for i = n - 1 downto 0 do
    let inst = Program.get flat i in
    (match Inst.mem_access inst with
    | Some (m, _w, dir) ->
        if Taint_flow.address_tainted taint i m then begin
          let kind =
            match dir with `Load -> Load | `Store -> Store | `Rmw -> Rmw
          in
          let transient = spec.Spec_reach.transient.(i) in
          let bypass =
            Inst.is_load inst && spec.Spec_reach.bypass_exposed.(i)
          in
          if transient || bypass then
            transmitters := { index = i; kind; transient; bypass } :: !transmitters
          else arch_flows := i :: !arch_flows
        end
    | None -> ());
    if Inst.is_cond_branch inst
       && spec.Spec_reach.transient.(i)
       && Taint_flow.flags_tainted_before taint i
    then
      transmitters :=
        { index = i; kind = Branch; transient = true; bypass = false }
        :: !transmitters
  done;
  {
    lint;
    window = spec.Spec_reach.window;
    windows = spec.Spec_reach.windows;
    transmitters = !transmitters;
    arch_flows = !arch_flows;
    leaky = !transmitters <> [];
  }

(** Priority score for [static_filter=score]: number of distinct speculative
    transmitter sites.  0 means provably leak-free. *)
let score t = List.length t.transmitters

let pp_site flat ppf s =
  Format.fprintf ppf "@%d %s%s%s: %a" s.index (kind_name s.kind)
    (if s.transient then " [transient]" else "")
    (if s.bypass then " [store-bypass]" else "")
    Inst.pp (Program.get flat s.index)

let pp flat ppf t =
  Format.fprintf ppf "classification: %s@."
    (if t.leaky then "potentially-leaky" else "leak-free");
  Format.fprintf ppf "speculation window: %d@." t.window;
  if t.windows <> [] then begin
    Format.fprintf ppf "speculation windows:@.";
    List.iter
      (fun (b, reach) ->
        Format.fprintf ppf "  branch @%d covers %d instruction(s)@." b
          (List.length reach))
      t.windows
  end;
  if t.transmitters <> [] then begin
    Format.fprintf ppf "transmitter sites:@.";
    List.iter (fun s -> Format.fprintf ppf "  %a@." (pp_site flat) s) t.transmitters
  end;
  if t.arch_flows <> [] then begin
    Format.fprintf ppf "architectural tainted-address accesses (not leaky per se):@.";
    List.iter
      (fun i ->
        Format.fprintf ppf "  @%d: %a@." i Inst.pp (Program.get flat i))
      t.arch_flows
  end;
  if t.lint.Lint.diags <> [] then begin
    Format.fprintf ppf "lint:@.";
    List.iter (fun d -> Format.fprintf ppf "  %a@." Lint.pp_diag d) t.lint.Lint.diags
  end
