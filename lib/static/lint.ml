(** Well-formedness lint for flattened programs.

    Turns generator (or hand-written-asm) bugs into named diagnostics
    instead of downstream crashes.  Severity model:

    - {e errors} are structural defects no pipeline stage should ever see —
      unresolved or out-of-range branch targets, cyclic control flow,
      invalid address scales, writes to the sandbox base register, operand
      shapes the {!Amulet_isa.Encoder} cannot represent.  The generator's
      reject-and-regenerate hook and the property tests gate on these.
    - {e warnings} flag suspicious-but-executable code — accesses that may
      wrap past the sandbox (the emulator masks them), unmasked
      input-derived indices, reads of the scratch register or of
      never-written flags, dead code.  Generated programs may legitimately
      trip these (e.g. a SETcc before any CMP), so they never gate. *)

open Amulet_isa

type severity = Error | Warning

type diag = {
  code : string;  (** stable kebab-case diagnostic name *)
  severity : severity;
  index : int option;  (** offending instruction, when localized *)
  message : string;
}

type report = { diags : diag list; errors : int; warnings : int }

let ok report = report.errors = 0

(** Default sandbox capacity assumed by the containment check: one page,
    the floor across the bundled defense configurations. *)
let default_sandbox_bytes = 4096

let scratch_reg = Reg.R15

let in_i32 v = v >= -0x8000_0000 && v <= 0x7FFF_FFFF

let operand_diags i (op : Operand.t) ~(is_dest : bool) =
  let ds = ref [] in
  let add code severity message = ds := { code; severity; index = Some i; message } :: !ds in
  (match op with
  | Operand.Mem m ->
      if not (List.mem m.Operand.scale [ 1; 2; 4; 8 ]) then
        add "invalid-scale" Error
          (Printf.sprintf "address scale %d is not 1, 2, 4 or 8" m.Operand.scale);
      if not (in_i32 m.Operand.disp) then
        add "disp-unencodable" Error
          (Printf.sprintf "displacement %d does not fit in 32 bits" m.Operand.disp)
  | Operand.Imm _ when is_dest ->
      add "immediate-destination" Error "immediate used as a destination operand"
  | Operand.Imm _ | Operand.Reg _ -> ());
  !ds

let inst_shape_diags i (inst : Inst.t) =
  let ds = ref [] in
  let add code severity message =
    ds := { code; severity; index = Some i; message } :: !ds
  in
  let dst_src dst src =
    ds := operand_diags i dst ~is_dest:true @ operand_diags i src ~is_dest:false @ !ds;
    if Operand.is_mem dst && Operand.is_mem src then
      add "two-memory-operands" Error "instruction has two memory operands"
  in
  (match inst with
  | Inst.Binop (_, _, dst, src) | Inst.Mov (_, dst, src) -> dst_src dst src
  | Inst.Cmp (_, a, b) | Inst.Test (_, a, b) ->
      ds := operand_diags i a ~is_dest:false @ operand_diags i b ~is_dest:false @ !ds;
      if Operand.is_mem a && Operand.is_mem b then
        add "two-memory-operands" Error "instruction has two memory operands"
  | Inst.Unop (_, _, op) -> ds := operand_diags i op ~is_dest:true @ !ds
  | Inst.Shift (_, w, op, n) ->
      ds := operand_diags i op ~is_dest:true @ !ds;
      if n < 0 || n > 255 then
        add "shift-count-unencodable" Error
          (Printf.sprintf "shift count %d does not fit in a byte" n)
      else if n >= Width.bits w then
        add "shift-count-masked" Warning
          (Printf.sprintf "shift count %d exceeds the %d-bit operand and is masked at runtime"
             n (Width.bits w))
  | Inst.Imul (_, _, src) | Inst.Movx (_, _, _, src) | Inst.Cmovcc (_, _, _, src) ->
      ds := operand_diags i src ~is_dest:false @ !ds
  | Inst.Setcc (_, dst) -> ds := operand_diags i dst ~is_dest:true @ !ds
  | Inst.Lea (_, m) -> ds := operand_diags i (Operand.Mem m) ~is_dest:false @ !ds
  | Inst.Nop | Inst.Xchg _ | Inst.Jmp _ | Inst.Jcc _ | Inst.Fence | Inst.Exit -> ());
  (* writes to the sandbox base pointer corrupt every later memory access *)
  if List.exists (Reg.equal Reg.sandbox_base) (Inst.dest_regs inst) then
    add "sandbox-base-overwrite" Error
      (Printf.sprintf "instruction writes the sandbox base register %s"
         (Reg.name Reg.sandbox_base));
  !ds

let branch_diags flat i (inst : Inst.t) =
  let n = Program.length flat in
  match Inst.branch_target inst with
  | None -> []
  | Some (Inst.Label l) ->
      [ { code = "unresolved-label"; severity = Error; index = Some i;
          message = Printf.sprintf "branch target .%s was never resolved" l } ]
  | Some (Inst.Abs t) ->
      if t < 0 || t >= n then
        [ { code = "branch-out-of-range"; severity = Error; index = Some i;
            message = Printf.sprintf "branch target @%d is outside [0, %d)" t n } ]
      else if t <= i then
        [ { code = "non-dag-control-flow"; severity = Error; index = Some i;
            message = Printf.sprintf "branch target @%d is not strictly forward" t } ]
      else []

(* Sandbox containment of one memory access, given the abstract register
   state just before it. *)
let containment_diags ~sandbox_bytes taint i (m : Operand.mem) w =
  let open Taint_flow in
  let bytes = Width.bytes w in
  if not (Reg.equal m.Operand.base Reg.sandbox_base) then
    [ { code = "non-sandbox-base"; severity = Warning; index = Some i;
        message = Printf.sprintf "memory access based on %s, not the sandbox base %s"
            (Reg.name m.Operand.base) (Reg.name Reg.sandbox_base) } ]
  else
    let index_part =
      match m.Operand.index with
      | None -> Some 0
      | Some r -> (
          match (value_before taint i r).max with
          | Some mx -> Some (mx * m.Operand.scale)
          | None -> None)
    in
    match index_part with
    | None ->
        [ { code = "unmasked-address"; severity = Warning; index = Some i;
            message = "index register is unbounded (no mask reaches this access)" } ]
    | Some off ->
        let lo = m.Operand.disp and hi = off + m.Operand.disp + bytes in
        if lo < 0 || hi > sandbox_bytes then
          [ { code = "sandbox-overflow"; severity = Warning; index = Some i;
              message = Printf.sprintf
                  "access may reach offset %d, outside the %d-byte sandbox (wrapped at runtime)"
                  (if lo < 0 then lo else hi) sandbox_bytes } ]
        else []

let use_diags reaching flat i (inst : Inst.t) =
  let ds = ref [] in
  if List.exists (Reg.equal scratch_reg) (Inst.source_regs inst)
     && Reaching.may_read_entry reaching i scratch_reg
  then
    ds := { code = "scratch-read"; severity = Warning; index = Some i;
            message = Printf.sprintf "%s is scratch; its entry value is unspecified"
                (Reg.name scratch_reg) } :: !ds;
  if Inst.reads_flags inst && Reaching.flags_entry_only reaching i then
    ds := { code = "constant-predicate"; severity = Warning; index = Some i;
            message = "flags are never written before this read; the predicate is constant" }
         :: !ds;
  ignore flat;
  !ds

let check ?(sandbox_bytes = default_sandbox_bytes) (flat : Program.flat) : report =
  let cfg = Cfg.build flat in
  let reaching = Reaching.analyze cfg in
  let taint = Taint_flow.analyze cfg in
  let n = Program.length flat in
  let diags = ref [] in
  for i = n - 1 downto 0 do
    let inst = Program.get flat i in
    let here =
      inst_shape_diags i inst @ branch_diags flat i inst
      @ use_diags reaching flat i inst
      @
      match Inst.mem_access inst with
      | Some (m, w, _) -> containment_diags ~sandbox_bytes taint i m w
      | None -> (
          match inst with
          | Inst.Lea _ -> [] (* address computation, no access *)
          | _ -> [])
    in
    diags := here @ !diags
  done;
  (* program-level diagnostics *)
  let dead = Cfg.unreachable cfg in
  if dead <> [] then
    diags :=
      !diags
      @ [ { code = "dead-code"; severity = Warning; index = None;
            message = Printf.sprintf "%d basic block(s) are unreachable from the entry"
                (List.length dead) } ];
  let errors =
    List.length (List.filter (fun d -> d.severity = Error) !diags)
  in
  let warnings =
    List.length (List.filter (fun d -> d.severity = Warning) !diags)
  in
  { diags = !diags; errors; warnings }

let severity_name = function Error -> "error" | Warning -> "warning"

let pp_diag ppf d =
  (match d.index with
  | Some i -> Format.fprintf ppf "@%d: " i
  | None -> ());
  Format.fprintf ppf "%s[%s]: %s" (severity_name d.severity) d.code d.message

let pp ppf r =
  List.iter (fun d -> Format.fprintf ppf "%a@." pp_diag d) r.diags;
  Format.fprintf ppf "%d error(s), %d warning(s)@." r.errors r.warnings
