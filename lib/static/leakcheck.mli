(** Combined static leakage report: the speculative-taint transmitter pass.

    Classifies a program as potentially leaky iff it contains a speculative
    transmitter — a memory access with an input-tainted address that can
    execute transiently (under a mispredicted branch or via store-bypass),
    or a transient conditional branch with input-tainted flags.  Leak-free
    programs cannot produce a contract violation under any bundled
    defense/contract pair, which makes screening on this classification
    sound. *)

open Amulet_isa

type site_kind = Load | Store | Rmw | Branch

type site = {
  index : int;
  kind : site_kind;
  transient : bool;  (** inside some conditional-branch speculation window *)
  bypass : bool;  (** load exposed to store-bypass *)
}

type t = {
  lint : Lint.report;
  window : int;
  windows : (int * int list) list;
      (** conditional branch index -> transiently reachable indices *)
  transmitters : site list;  (** speculative transmitter sites — the leaks *)
  arch_flows : int list;
      (** architecturally executed accesses with input-tainted addresses
          (pinned by the contract's address observations; informational) *)
  leaky : bool;
}

val kind_name : site_kind -> string

val analyze : ?window:int -> ?sandbox_bytes:int -> Program.flat -> t
(** [window] defaults to [Amulet_contracts.Contract.default_window];
    [sandbox_bytes] to {!Lint.default_sandbox_bytes}. *)

val score : t -> int
(** Number of distinct speculative transmitter sites; [0] means provably
    leak-free.  Used by [static_filter=score] to prioritize programs. *)

val pp_site : Program.flat -> Format.formatter -> site -> unit
val pp : Program.flat -> Format.formatter -> t -> unit
