(** Speculation-window reachability: which instructions may execute
    transiently under a bounded window, and which loads are exposed to
    store-bypass (Spectre-v4 style). *)

type t = {
  window : int;
  transient : bool array;
      (** [transient.(i)]: instruction [i] may execute under a mispredicted
          conditional branch. *)
  bypass_exposed : bool array;
      (** [bypass_exposed.(i)]: instruction [i] is a load that may execute
          while an older store is still in flight. *)
  windows : (int * int list) list;
      (** per conditional branch: [(branch index, indices reachable
          transiently from it)] *)
}

val analyze : ?window:int -> Cfg.t -> t
(** [window] defaults to [Amulet_contracts.Contract.default_window]. *)
