(** Symbolic input-taint propagation, mirroring [Amulet_emu.Taint]'s flow
    rules with a one-bit taint abstraction plus unsigned upper-bound
    tracking (from [AND r, mask], immediate moves, and zero-extending
    loads).  All registers and all loaded data start input-tainted, per the
    harness's input model. *)

open Amulet_isa

type value = { tainted : bool; max : int option }
(** [tainted]: may the value depend on the test input.  [max]: inclusive
    unsigned upper bound, when known. *)

type state = { regs : value array; flags_tainted : bool }
(** [regs] is indexed by [Reg.index]. *)

type t

val analyze : Cfg.t -> t

val state_before : t -> int -> state
val value_before : t -> int -> Reg.t -> value

val address_tainted : t -> int -> Operand.mem -> bool
(** May the address of the memory operand at the index depend on the input?
    The sandbox base register is excluded (pinned by the harness). *)

val flags_tainted_before : t -> int -> bool
