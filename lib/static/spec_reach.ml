(** Speculation-window reachability.

    Over-approximates which instructions can execute {e transiently} under a
    bounded speculation window (the CT-COND exploration model of
    [Amulet_contracts.Contract]): from every conditional branch, both
    directions are mispredictable, so every instruction within [window]
    steps along any CFG path from either successor may execute transiently.
    [Fence] (LFENCE) and [Exit] terminate a window; further conditional
    branches inside a window do not reset it (nested mispredictions only
    explore paths this BFS already covers, since the budget is the total
    per-window instruction count).

    Also computes {e store-bypass exposure}: a load within [window] steps
    after a store (along some path) may execute before that store retires
    (Spectre-v4 style), observing stale data.  This is independent of
    conditional branches — contracts do not model bypass speculation, but
    the μarch engines perform it, so the leak check must account for it. *)

open Amulet_isa

type t = {
  window : int;
  transient : bool array;
      (** [transient.(i)]: instruction [i] may execute under a mispredicted
          conditional branch. *)
  bypass_exposed : bool array;
      (** [bypass_exposed.(i)]: instruction [i] is a load that may execute
          while an older store is still in flight. *)
  windows : (int * int list) list;
      (** per conditional branch: [(branch index, sorted indices reachable
          transiently from it)] *)
}

(* Breadth-first walk of instruction successors from [starts], visiting at
   most [budget] instructions deep.  [Fence] is visited but not descended
   through (speculation drains at a barrier); [Exit] likewise.  Returns the
   set of visited indices. *)
let walk flat ~starts ~budget =
  let n = Program.length flat in
  (* best.(i) = largest remaining budget seen at i, to allow revisits on
     shorter paths *)
  let best = Array.make (max n 1) (-1) in
  let q = Queue.create () in
  List.iter
    (fun s -> if s >= 0 && s < n then Queue.add (s, budget) q)
    starts;
  while not (Queue.is_empty q) do
    let i, b = Queue.take q in
    if b > 0 && b > best.(i) then begin
      best.(i) <- b;
      match Program.get flat i with
      | Inst.Fence | Inst.Exit -> ()
      | _ -> List.iter (fun s -> Queue.add (s, b - 1) q) (Cfg.inst_succs flat i)
    end
  done;
  let visited = ref [] in
  for i = n - 1 downto 0 do
    if best.(i) >= 0 then visited := i :: !visited
  done;
  !visited

let analyze ?(window = Amulet_contracts.Contract.default_window) (cfg : Cfg.t) : t
    =
  let flat = cfg.Cfg.flat in
  let n = Program.length flat in
  let transient = Array.make (max n 1) false in
  let bypass_exposed = Array.make (max n 1) false in
  let windows = ref [] in
  for i = 0 to n - 1 do
    let inst = Program.get flat i in
    if Inst.is_cond_branch inst then begin
      let starts = Cfg.inst_succs flat i in
      let reached = walk flat ~starts ~budget:window in
      List.iter (fun j -> transient.(j) <- true) reached;
      windows := (i, reached) :: !windows
    end;
    if Inst.is_store inst then
      let reached = walk flat ~starts:(Cfg.inst_succs flat i) ~budget:window in
      List.iter
        (fun j -> if Inst.is_load (Program.get flat j) then bypass_exposed.(j) <- true)
        reached
  done;
  { window; transient; bypass_exposed; windows = List.rev !windows }
