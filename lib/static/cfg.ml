(** Control-flow graph over a flattened program.

    Basic blocks are maximal straight-line runs of instructions; block
    leaders are the entry index, every branch target, and every instruction
    following a branch or an [Exit].  The graph tolerates arbitrary (even
    cyclic or malformed) control flow so the lint can diagnose it: an
    out-of-range or unresolved branch target simply contributes no edge. *)

open Amulet_isa

type block = {
  id : int;
  start : int;  (** index of the first instruction *)
  stop : int;  (** one past the last instruction *)
  mutable succs : int list;  (** successor block ids *)
  mutable preds : int list;  (** predecessor block ids *)
}

type t = {
  flat : Program.flat;
  blocks : block array;
  block_of : int array;  (** instruction index -> owning block id *)
  rpo : int list;  (** reverse-postorder over blocks reachable from entry *)
}

let in_range flat i = i >= 0 && i < Program.length flat

(* Resolved successor instruction indices of the instruction at [i]. *)
let inst_succs flat i =
  match Program.get flat i with
  | Inst.Exit -> []
  | Inst.Jmp (Inst.Abs t) -> if in_range flat t then [ t ] else []
  | Inst.Jmp (Inst.Label _) -> []
  | Inst.Jcc (_, t) ->
      let fall = if in_range flat (i + 1) then [ i + 1 ] else [] in
      let taken =
        match t with
        | Inst.Abs t when in_range flat t -> [ t ]
        | Inst.Abs _ | Inst.Label _ -> []
      in
      fall @ List.filter (fun x -> not (List.mem x fall)) taken
  | _ -> if in_range flat (i + 1) then [ i + 1 ] else []

let build (flat : Program.flat) : t =
  let n = Program.length flat in
  (* the leader rule is shared with the pre-decoded program representation,
     so the pipeline's block fast path and this CFG agree by construction *)
  let leader = Decoded.leaders flat in
  let starts = ref [] in
  for i = n - 1 downto 0 do
    if leader.(i) then starts := i :: !starts
  done;
  let starts = Array.of_list !starts in
  let nblocks = Array.length starts in
  let blocks =
    Array.init nblocks (fun b ->
        let start = starts.(b) in
        let stop = if b + 1 < nblocks then starts.(b + 1) else n in
        { id = b; start; stop; succs = []; preds = [] })
  in
  let block_of = Array.make (max n 1) 0 in
  Array.iter
    (fun b ->
      for i = b.start to b.stop - 1 do
        block_of.(i) <- b.id
      done)
    blocks;
  Array.iter
    (fun b ->
      if b.stop > b.start then
        b.succs <- List.map (fun i -> block_of.(i)) (inst_succs flat (b.stop - 1)))
    blocks;
  Array.iter
    (fun b -> List.iter (fun s -> blocks.(s).preds <- b.id :: blocks.(s).preds) b.succs)
    blocks;
  Array.iter (fun b -> b.preds <- List.rev b.preds) blocks;
  (* reverse-postorder via DFS from the entry block *)
  let rpo =
    if nblocks = 0 then []
    else begin
      let seen = Array.make nblocks false in
      let order = ref [] in
      let rec dfs b =
        if not seen.(b) then begin
          seen.(b) <- true;
          List.iter dfs blocks.(b).succs;
          order := b :: !order
        end
      in
      dfs 0;
      !order
    end
  in
  { flat; blocks; block_of; rpo }

let num_blocks t = Array.length t.blocks
let block t id = t.blocks.(id)
let block_of_inst t i = t.block_of.(i)

let reachable_blocks t =
  let seen = Array.make (num_blocks t) false in
  List.iter (fun b -> seen.(b) <- true) t.rpo;
  seen

(** Blocks never reachable from the entry (dead code). *)
let unreachable t =
  let seen = reachable_blocks t in
  let acc = ref [] in
  Array.iteri (fun b r -> if not r then acc := b :: !acc) seen;
  List.rev !acc

(** True when the block graph restricted to reachable blocks is acyclic
    (every edge goes to a strictly later instruction index). *)
let is_dag t =
  let ok = ref true in
  List.iter
    (fun bid ->
      let b = t.blocks.(bid) in
      List.iter (fun s -> if t.blocks.(s).start <= b.start then ok := false) b.succs)
    t.rpo;
  (* self-loops / single-block cycles *)
  Array.iter (fun b -> if List.mem b.id b.succs then ok := false) t.blocks;
  !ok

let pp ppf t =
  Array.iter
    (fun b ->
      Format.fprintf ppf "b%d [%d..%d) -> %s@." b.id b.start b.stop
        (String.concat "," (List.map (fun s -> "b" ^ string_of_int s) b.succs)))
    t.blocks
