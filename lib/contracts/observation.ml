(** ISA-level observations and contract traces.

    A contract trace is the sequence of observations the leakage contract
    exposes for one execution (program, input).  Two executions with equal
    contract traces are supposed to be microarchitecturally
    indistinguishable; see {!Contract} for the clause definitions. *)

type t =
  | Pc of int  (** program counter of a retired/explored instruction *)
  | Load_addr of int
  | Store_addr of int
  | Load_value of int64  (** loaded data (value-exposing contracts) *)
  | Reg_value of int * int64  (** initial register exposure: (index, value) *)
  | Spec_enter of int  (** entering a mispredicted path at branch PC *)
  | Spec_exit  (** rollback point of a mispredicted path *)

type trace = t list

let equal (a : t) (b : t) = a = b

let pp fmt = function
  | Pc pc -> Format.fprintf fmt "pc:0x%x" pc
  | Load_addr a -> Format.fprintf fmt "ld:0x%x" a
  | Store_addr a -> Format.fprintf fmt "st:0x%x" a
  | Load_value v -> Format.fprintf fmt "val:0x%Lx" v
  | Reg_value (i, v) -> Format.fprintf fmt "reg%d:0x%Lx" i v
  | Spec_enter pc -> Format.fprintf fmt "spec-enter@0x%x" pc
  | Spec_exit -> Format.fprintf fmt "spec-exit"

let pp_trace fmt (tr : trace) =
  Format.fprintf fmt "@[<hov 2>[%a]@]"
    (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f ";@ ") pp)
    tr

(* FNV-1a over the structure, stable across runs (unlike Hashtbl.hash on
   boxed int64 we fold payloads explicitly). *)
let fnv_prime = 0x100000001b3L
let fnv_offset = 0xcbf29ce484222325L

let mix h v = Int64.mul (Int64.logxor h v) fnv_prime

let hash_one h = function
  | Pc pc -> mix (mix h 1L) (Int64.of_int pc)
  | Load_addr a -> mix (mix h 2L) (Int64.of_int a)
  | Store_addr a -> mix (mix h 3L) (Int64.of_int a)
  | Load_value v -> mix (mix h 4L) v
  | Reg_value (i, v) -> mix (mix (mix h 5L) (Int64.of_int i)) v
  | Spec_enter pc -> mix (mix h 6L) (Int64.of_int pc)
  | Spec_exit -> mix h 7L

(** Order-sensitive digest of a trace. *)
let hash_trace (tr : trace) : int64 = List.fold_left hash_one fnv_offset tr

(* Constructor tags only, payloads ignored: two traces share a shape hash
   iff they make the same kinds of observations in the same order.  This is
   the coverage-map feature guided generation keys on — it classifies what
   a program's control/dataflow *does* (loads, stores, speculative windows)
   independent of the concrete addresses an input happens to produce. *)
let shape_one h = function
  | Pc _ -> mix h 1L
  | Load_addr _ -> mix h 2L
  | Store_addr _ -> mix h 3L
  | Load_value _ -> mix h 4L
  | Reg_value _ -> mix h 5L
  | Spec_enter _ -> mix h 6L
  | Spec_exit -> mix h 7L

(** Order-sensitive digest of the observation {e kinds} only. *)
let shape_hash (tr : trace) : int64 = List.fold_left shape_one fnv_offset tr

let equal_trace a b = List.equal equal a b
