(** The executable leakage model: runs a test case on the sequential
    emulator under a contract, producing its contract trace (exploring
    mispredicted branches with rollback per the execution clause) and,
    optionally, taint information for input boosting. *)

open Amulet_emu

type result = {
  ctrace : Observation.trace;
  ctrace_hash : int64;
  shape_hash : int64;  (** {!Observation.shape_hash} of [ctrace] *)
  taint : Taint.t option;
  arch_steps : int;
  spec_steps : int;  (** instructions explored on mispredicted paths *)
  fault : string option;
  final_state_hash : int64;
}

val collect :
  ?collect_taint:bool ->
  ?max_steps:int ->
  ?decoded:Amulet_isa.Decoded.t ->
  Contract.t ->
  Amulet_isa.Program.flat ->
  State.t ->
  result
(** Collect the contract trace starting from [state] (which the caller has
    initialized with the test input; it is mutated).  [decoded] — when it is
    a decode of the same program (compared with [==]; mismatches are ignored)
    — enables the straight-line fast path: branch-free runs execute as one
    fused {!Emulator.run_straight} call.  Hooks fire per instruction either
    way, so the trace is byte-identical with and without it. *)
