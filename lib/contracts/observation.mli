(** ISA-level observations and contract traces. *)

type t =
  | Pc of int
  | Load_addr of int
  | Store_addr of int
  | Load_value of int64
  | Reg_value of int * int64  (** initial register exposure *)
  | Spec_enter of int  (** entering a mispredicted path at a branch PC *)
  | Spec_exit

type trace = t list

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val pp_trace : Format.formatter -> trace -> unit

val hash_trace : trace -> int64
(** Order-sensitive FNV digest, stable across runs. *)

val shape_hash : trace -> int64
(** Order-sensitive digest of the observation {e kinds} only (payloads
    ignored): the "trace shape" feature of the guided-fuzzing coverage
    map.  Stable across runs. *)

val equal_trace : trace -> trace -> bool
