(** The executable leakage model.

    Runs a test case on the sequential emulator under a given contract,
    producing the contract trace (per the observation clause), exploring
    mispredicted branch directions (per the execution clause) and, when
    requested, the input-taint information used for input boosting.  This is
    the AMuLeT analogue of Revizor's Unicorn-based model. *)

open Amulet_isa
open Amulet_emu

type result = {
  ctrace : Observation.trace;
  ctrace_hash : int64;
  shape_hash : int64;  (** digest of observation kinds only, for coverage *)
  taint : Taint.t option;
  arch_steps : int;  (** instructions retired on the architectural path *)
  spec_steps : int;  (** instructions explored on mispredicted paths *)
  fault : string option;
  final_state_hash : int64;
}

(** Collect the contract trace of [flat] starting from [state] (which the
    caller has initialized with the test input; it is mutated by execution).
    [collect_taint] additionally runs the taint tracker for boosting. *)
let collect ?(collect_taint = false) ?(max_steps = 10_000) ?decoded
    (c : Contract.t) (flat : Program.flat) (state : State.t) : result =
  (* A decode for a different program would make [fuse_stop] meaningless. *)
  let decoded =
    match decoded with
    | Some d when Decoded.flat d == flat -> Some d
    | Some _ | None -> None
  in
  let obs = ref [] in
  let emit o = obs := o :: !obs in
  let taint = if collect_taint then Some (Taint.create state.State.mem) else None in
  (match taint with
  | Some tctx when c.Contract.expose_initial_regs -> Taint.mark_all_regs_relevant tctx
  | Some _ | None -> ());
  let spec_steps = ref 0 in
  let emu = Emulator.create flat state in
  if c.Contract.expose_initial_regs then
    List.iter
      (fun r ->
        emit (Observation.Reg_value (Reg.index r, State.read_reg state r)))
      Reg.all;
  let on_inst ~pc ~index:_ inst =
    if c.Contract.observe_pc then emit (Observation.Pc pc);
    match taint with
    | None -> ()
    | Some t ->
        let request = Exec.mem_request ~read_reg:(State.read_reg state) inst in
        Taint.step t ~inst ~request
          ~observe_values:c.Contract.observe_loaded_values
  in
  let on_mem ~kind ~pc:_ ~addr ~width:_ ~value =
    if c.Contract.observe_addresses then
      emit
        (match kind with
        | `Load -> Observation.Load_addr addr
        | `Store -> Observation.Store_addr addr);
    match kind with
    | `Load -> if c.Contract.observe_loaded_values then emit (Observation.Load_value value)
    | `Store -> ()
  in
  let hooks = { Emulator.on_inst = Some on_inst; on_mem = Some on_mem } in
  (* Wrong-path excursion bookkeeping: [run_path depth budget] executes until
     exit or budget exhaustion, recursing into mispredicted directions of
     conditional branches while depth allows. [budget = None] is the
     unbounded architectural path (still capped by [max_steps]). *)
  let window, nesting =
    match c.Contract.speculation with
    | Contract.No_speculation -> 0, 0
    | Contract.Conditional_branches { window; nesting } -> window, nesting
  in
  let total = ref 0 in
  let rec run_path depth budget =
    let continue_ = ref true in
    let budget = ref budget in
    while !continue_ do
      if Emulator.exited emu || !total >= max_steps then continue_ := false
      else begin
        (match !budget with
        | Some b when b <= 0 -> continue_ := false
        | Some _ | None -> ());
        if !continue_ then begin
          let index = Emulator.current_index emu in
          let in_code = index >= 0 && index < Program.length flat in
          (* Straight-line fast path: when the pre-decode proves the run
             [index, fuse_stop) is branch/exit-free, fuse it into one
             emulator call.  Hooks still fire per instruction, so the trace
             is identical; only the per-step control logic is skipped (a
             fused run cannot contain a [Jcc], so no exploration point is
             bypassed). *)
          let fused =
            match decoded with
            | Some d when in_code ->
                let stop = (Decoded.info d index).Decoded.fuse_stop in
                if stop > index then begin
                  let fuel = max_steps - !total in
                  let fuel =
                    match !budget with Some b -> min fuel b | None -> fuel
                  in
                  let executed = Emulator.run_straight ~hooks emu ~stop ~fuel in
                  total := !total + executed;
                  if depth > 0 then spec_steps := !spec_steps + executed;
                  (match !budget with
                  | Some b -> budget := Some (b - executed)
                  | None -> ());
                  executed > 0
                end
                else false
            | Some _ | None -> false
          in
          if not fused then begin
            (* Explore the mispredicted direction before executing a branch. *)
            (if in_code && depth < nesting then
               match Program.get flat index with
               | Inst.Jcc (_, Inst.Abs target) as jcc ->
                   let taken = Exec.branch_taken jcc state.State.flags in
                   let wrong = if taken then index + 1 else target in
                   let cp = Emulator.checkpoint emu in
                   emit (Observation.Spec_enter (Program.pc_of_index flat index));
                   Emulator.set_index emu wrong;
                   run_path (depth + 1) (Some window);
                   emit Observation.Spec_exit;
                   Emulator.restore emu cp
               | _ -> ());
            (* Execute the instruction for real on this path. *)
            let before = Emulator.steps emu in
            (match Emulator.step ~hooks emu with
            | `Exit -> continue_ := false
            | `Continue -> ());
            let executed = Emulator.steps emu - before in
            total := !total + executed;
            if depth > 0 then spec_steps := !spec_steps + executed;
            match !budget with
            | Some b -> budget := Some (b - executed)
            | None -> ()
          end
        end
      end
    done
  in
  run_path 0 None;
  Emulator.commit emu;
  let fault =
    match Emulator.fault emu with
    | Some _ as f -> f
    | None -> if !total >= max_steps then Some "step limit exceeded" else None
  in
  let ctrace = List.rev !obs in
  {
    ctrace;
    ctrace_hash = Observation.hash_trace ctrace;
    shape_hash = Observation.shape_hash ctrace;
    taint;
    arch_steps = !total - !spec_steps;
    spec_steps = !spec_steps;
    fault;
    final_state_hash = State.hash state;
  }
