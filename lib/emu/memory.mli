(** The memory sandbox: [pages] 4 KiB pages starting at [base]
    (virtual = physical, SE-mode style).  Accesses outside the sandbox read
    zero and drop writes — they exist only for their microarchitectural
    side effects.  An optional write journal supports cheap rollback for
    speculative-path exploration. *)

open Amulet_isa

type t

val page_size : int

val create : ?base:int -> pages:int -> unit -> t
val size : t -> int
val base : t -> int
val limit : t -> int
val in_bounds : t -> int -> bool

val sandbox_mask : t -> int
(** [size - 1]: wraps arbitrary offsets into the sandbox. *)

val read_byte : t -> int -> int
val write_byte : t -> int -> int -> unit

val read : t -> Width.t -> int -> int64
(** Little-endian read of [Width.bytes w] bytes. *)

val write : t -> Width.t -> int -> int64 -> unit

val read_word : t -> int -> int64
(** 8-byte-aligned word accessors (input loading, taint granularity). *)

val write_word : t -> int -> int64 -> unit
val words : t -> int

(** {1 Journaling} *)

type mark

val set_journaling : t -> bool -> unit
val mark : t -> mark

val rollback : t -> mark -> unit
(** Undo all writes made after [mark].
    @raise Invalid_argument on a stale or foreign mark — one taken before a
    {!clear_journal}, or against a different memory. *)

val clear_journal : t -> unit

(** {1 Bulk operations} *)

val fill_zero : t -> unit

val load_blob : t -> string -> unit
(** Zero the sandbox, then copy the blob in from the base. *)

val blit : src:t -> dst:t -> unit
(** Copy contents between same-geometry sandboxes. *)

val copy : t -> t
val equal : t -> t -> bool

val hash : t -> int64
(** FNV digest of the contents. *)
