(** Sequential architectural emulator.

    Stands in for the Unicorn engine in the original AMuLeT: executes a
    flattened test program over a {!State.t}, firing hooks for instruction
    retirement and memory accesses.  Supports lightweight checkpointing
    (registers snapshot + memory write journal) so the leakage model can
    explore mispredicted paths and roll back, per the contract's execution
    clause. *)

open Amulet_isa

(** Fired once per executed instruction, before its effects are applied. *)
type inst_hook = pc:int -> index:int -> Inst.t -> unit

(** Fired for every memory access performed by an instruction. *)
type mem_hook =
  kind:[ `Load | `Store ] -> pc:int -> addr:int -> width:Width.t -> value:int64 -> unit

type hooks = { on_inst : inst_hook option; on_mem : mem_hook option }

let no_hooks = { on_inst = None; on_mem = None }

type t = {
  flat : Program.flat;
  state : State.t;
  mutable index : int;  (** next instruction index *)
  mutable steps : int;
  mutable exited : bool;
  mutable fault : string option;
      (** set when execution escapes the code region *)
  mutable cur_hooks : hooks;  (** hooks of the step in progress *)
  mutable cur_pc : int;  (** pc of the step in progress *)
  mutable mc : Exec.machine option;
      (** machine view built once per emulator; its closures read
          [cur_hooks]/[cur_pc], so stepping allocates nothing *)
}

let create flat state =
  {
    flat;
    state;
    index = 0;
    steps = 0;
    exited = false;
    fault = None;
    cur_hooks = no_hooks;
    cur_pc = 0;
    mc = None;
  }

let pc t = Program.pc_of_index t.flat t.index
let state t = t.state
let steps t = t.steps
let exited t = t.exited
let fault t = t.fault

let reset t =
  t.index <- 0;
  t.steps <- 0;
  t.exited <- false;
  t.fault <- None

(* The Exec.machine view over architectural state, built once per emulator:
   its closures read the current hooks and pc from [t] instead of being
   rebuilt for each step. *)
let machine t : Exec.machine =
  match t.mc with
  | Some m -> m
  | None ->
      let mem = t.state.State.mem in
      let fire kind addr width value =
        match t.cur_hooks.on_mem with
        | None -> ()
        | Some h -> h ~kind ~pc:t.cur_pc ~addr ~width ~value
      in
      let m =
        {
          Exec.read_reg = State.read_reg t.state;
          write_reg = (fun w r v -> State.write_reg_width t.state w r v);
          read_flags = (fun () -> t.state.State.flags);
          write_flags = (fun f -> t.state.State.flags <- f);
          load =
            (fun w addr ->
              let v = Memory.read mem w addr in
              fire `Load addr w v;
              v);
          store =
            (fun w addr v ->
              fire `Store addr w v;
              Memory.write mem w addr v);
        }
      in
      t.mc <- Some m;
      m

(** Execute the instruction at the current index.  Returns [`Exit] when the
    program has terminated (or faulted), [`Continue] otherwise. *)
let step ?(hooks = no_hooks) t =
  if t.exited then `Exit
  else if t.index < 0 || t.index >= Program.length t.flat then begin
    t.fault <- Some (Printf.sprintf "control flow escaped code region at index %d" t.index);
    t.exited <- true;
    `Exit
  end
  else begin
    let inst = Program.get t.flat t.index in
    let pc = Program.pc_of_index t.flat t.index in
    (match hooks.on_inst with None -> () | Some h -> h ~pc ~index:t.index inst);
    t.cur_hooks <- hooks;
    t.cur_pc <- pc;
    let mc = machine t in
    t.steps <- t.steps + 1;
    match Exec.step mc inst with
    | Exec.Next ->
        t.index <- t.index + 1;
        `Continue
    | Exec.Jump target ->
        t.index <- target;
        `Continue
    | Exec.Exited ->
        t.exited <- true;
        `Exit
  end

(** Execute instructions from the current index up to (excluding) [stop],
    which the caller guarantees form a straight-line run — every instruction
    steps to its successor (no branch, no [Exit]; see
    {!Amulet_isa.Decoded.dinfo.fuse_stop}).  At most [fuel] instructions
    execute; hooks fire per instruction exactly as {!step} fires them.
    Returns the number of instructions executed.  Control transfers are
    tolerated defensively (the run simply ends early), so a wrong
    [stop] degrades to the slow path rather than diverging. *)
let run_straight ?(hooks = no_hooks) t ~stop ~fuel =
  if t.exited || fuel <= 0 then 0
  else begin
    t.cur_hooks <- hooks;
    let mc = machine t in
    let code = t.flat.Program.code in
    let executed = ref 0 in
    let continue_ = ref true in
    while !continue_ && t.index < stop && !executed < fuel do
      let inst = code.(t.index) in
      let pc = Program.pc_of_index t.flat t.index in
      t.cur_pc <- pc;
      (match hooks.on_inst with None -> () | Some h -> h ~pc ~index:t.index inst);
      t.steps <- t.steps + 1;
      incr executed;
      match Exec.step mc inst with
      | Exec.Next -> t.index <- t.index + 1
      | Exec.Jump target ->
          t.index <- target;
          continue_ := false
      | Exec.Exited ->
          t.exited <- true;
          continue_ := false
    done;
    !executed
  end

(** Run to completion (or until [max_steps], guarding against ill-formed
    cyclic programs).  Returns the number of instructions executed. *)
let run ?(hooks = no_hooks) ?(max_steps = 100_000) t =
  let rec go () =
    if t.steps >= max_steps then begin
      t.fault <- Some "step limit exceeded";
      t.exited <- true
    end
    else
      match step ~hooks t with `Exit -> () | `Continue -> go ()
  in
  go ();
  t.steps

(** Convenience: execute program [flat] over [state] from scratch. *)
let execute ?hooks ?max_steps flat state =
  let t = create flat state in
  ignore (run ?hooks ?max_steps t);
  t

(* ------------------------------------------------------------------ *)
(* Checkpointing (for speculative path exploration)                    *)
(* ------------------------------------------------------------------ *)

type checkpoint = {
  cp_index : int;
  cp_steps : int;
  cp_exited : bool;
  cp_regs : State.reg_snapshot;
  cp_mark : Memory.mark;
}

(** Take a checkpoint.  Enables memory journaling as a side effect; the
    journal stays enabled until {!commit} discards all checkpoints. *)
let checkpoint t : checkpoint =
  Memory.set_journaling t.state.State.mem true;
  {
    cp_index = t.index;
    cp_steps = t.steps;
    cp_exited = t.exited;
    cp_regs = State.snapshot_regs t.state;
    cp_mark = Memory.mark t.state.State.mem;
  }

(** Roll execution back to a checkpoint (registers, flags, memory, PC). *)
let restore t (cp : checkpoint) =
  State.restore_regs t.state cp.cp_regs;
  Memory.rollback t.state.State.mem cp.cp_mark;
  t.index <- cp.cp_index;
  t.steps <- cp.cp_steps;
  t.exited <- cp.cp_exited;
  t.fault <- None

(** Discard checkpoint tracking and stop journaling. *)
let commit t =
  Memory.set_journaling t.state.State.mem false;
  Memory.clear_journal t.state.State.mem

(** Force the next instruction index (used by the leakage model to explore
    the mispredicted direction of a branch). *)
let set_index t i = t.index <- i

let current_index t = t.index
