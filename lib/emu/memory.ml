(** The memory sandbox.

    Test programs access a contiguous region of [pages] 4 KiB pages starting
    at [base] (virtual = physical, mirroring gem5's syscall-emulation mode).
    The program generator masks every address into this region; accesses that
    nevertheless fall outside (e.g. cache-priming loads issued by the
    executor) read as zero and ignore writes — they exist only for their
    microarchitectural side effects.

    An optional write journal supports cheap rollback, used by the leakage
    model when it explores mispredicted paths. *)

open Amulet_isa

let page_size = 4096

type t = {
  base : int;
  pages : int;
  data : Bytes.t;
  mutable journal : (int * char) list;  (** (absolute address, old byte) *)
  mutable journal_len : int;
  mutable journaling : bool;
}

let create ?(base = 0x1000) ~pages () =
  assert (pages >= 1);
  {
    base;
    pages;
    data = Bytes.make (pages * page_size) '\000';
    journal = [];
    journal_len = 0;
    journaling = false;
  }

let size m = m.pages * page_size
let base m = m.base
let limit m = m.base + size m

let in_bounds m addr = addr >= m.base && addr < limit m

(** Mask an arbitrary offset into the sandbox (used by the generator's
    address instrumentation: offsets are wrapped modulo the sandbox size). *)
let sandbox_mask m = size m - 1

let read_byte m addr =
  if in_bounds m addr then Char.code (Bytes.unsafe_get m.data (addr - m.base))
  else 0

let write_byte m addr v =
  if in_bounds m addr then begin
    let off = addr - m.base in
    if m.journaling then begin
      m.journal <- (addr, Bytes.unsafe_get m.data off) :: m.journal;
      m.journal_len <- m.journal_len + 1
    end;
    Bytes.unsafe_set m.data off (Char.unsafe_chr (v land 0xFF))
  end

(** Little-endian read of [Width.bytes w] bytes at [addr]. *)
let read m w addr =
  let n = Width.bytes w in
  let v = ref 0L in
  for i = n - 1 downto 0 do
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (read_byte m (addr + i)))
  done;
  !v

(** Little-endian write of the low [Width.bytes w] bytes of [v] at [addr]. *)
let write m w addr v =
  let n = Width.bytes w in
  for i = 0 to n - 1 do
    write_byte m (addr + i) (Int64.to_int (Int64.shift_right_logical v (8 * i)) land 0xFF)
  done

(** 64-bit aligned word accessors (used by input loading and taint). *)
let read_word m i = read m Width.W64 (m.base + (i * 8))
let write_word m i v = write m Width.W64 (m.base + (i * 8)) v
let words m = size m / 8

(* ------------------------------------------------------------------ *)
(* Journaling / rollback                                               *)
(* ------------------------------------------------------------------ *)

type mark = int

let set_journaling m on = m.journaling <- on
let mark m : mark = m.journal_len

(** Undo all writes made after [mark] (most recent first).  A mark deeper
    than the current journal is stale — taken before a [clear_journal], or
    against a different memory — and rolling back to it would silently
    undo nothing, so reject it loudly instead. *)
let rollback m (mk : mark) =
  if mk < 0 || mk > m.journal_len then
    invalid_arg
      (Printf.sprintf
         "Memory.rollback: stale or foreign mark %d (journal length %d)" mk
         m.journal_len);
  while m.journal_len > mk do
    match m.journal with
    | [] ->
        invalid_arg "Memory.rollback: journal shorter than its recorded length"
    | (addr, old) :: rest ->
        Bytes.unsafe_set m.data (addr - m.base) old;
        m.journal <- rest;
        m.journal_len <- m.journal_len - 1
  done

let clear_journal m =
  m.journal <- [];
  m.journal_len <- 0

(* ------------------------------------------------------------------ *)
(* Bulk operations                                                     *)
(* ------------------------------------------------------------------ *)

let fill_zero m = Bytes.fill m.data 0 (size m) '\000'

(** Load raw input bytes starting at the sandbox base (input shorter than the
    sandbox leaves the tail zeroed). *)
let load_blob m blob =
  fill_zero m;
  let n = min (String.length blob) (size m) in
  Bytes.blit_string blob 0 m.data 0 n

(** Copy [src]'s contents into [dst] (same geometry required). *)
let blit ~src ~dst =
  assert (src.pages = dst.pages);
  Bytes.blit src.data 0 dst.data 0 (size src)

let copy m =
  {
    base = m.base;
    pages = m.pages;
    data = Bytes.copy m.data;
    journal = [];
    journal_len = 0;
    journaling = false;
  }

let equal a b = a.base = b.base && a.pages = b.pages && Bytes.equal a.data b.data

(** Fowler–Noll–Vo hash of the contents (used in state digests). *)
let hash m =
  let h = ref 0xcbf29ce484222325L in
  for i = 0 to Bytes.length m.data - 1 do
    h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code (Bytes.get m.data i))))
           0x100000001b3L
  done;
  !h
