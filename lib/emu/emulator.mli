(** Sequential architectural emulator (the Unicorn stand-in): executes a
    flattened program over a {!State.t} with instruction/memory hooks and
    lightweight checkpointing for speculative-path exploration. *)

open Amulet_isa

type inst_hook = pc:int -> index:int -> Inst.t -> unit
(** Fired once per executed instruction, before its effects. *)

type mem_hook =
  kind:[ `Load | `Store ] ->
  pc:int ->
  addr:int ->
  width:Width.t ->
  value:int64 ->
  unit

type hooks = { on_inst : inst_hook option; on_mem : mem_hook option }

val no_hooks : hooks

type t

val create : Program.flat -> State.t -> t
val pc : t -> int
val state : t -> State.t
val steps : t -> int
val exited : t -> bool

val fault : t -> string option
(** Set when control flow escapes the code region or the step limit
    trips. *)

val reset : t -> unit

val step : ?hooks:hooks -> t -> [ `Continue | `Exit ]
(** Execute the instruction at the current index. *)

val run_straight : ?hooks:hooks -> t -> stop:int -> fuel:int -> int
(** Fused basic-block execution: run instructions from the current index up
    to (excluding) [stop], which the caller promises is straight-line code
    (see {!Amulet_isa.Decoded.info}), executing at most [fuel] instructions.
    Hooks fire per instruction exactly as under {!step}; returns the number
    of instructions executed.  A control transfer inside the range ends the
    run early rather than faulting, so a stale [stop] degrades to the
    per-instruction path. *)

val run : ?hooks:hooks -> ?max_steps:int -> t -> int
(** Run to completion; returns the number of instructions executed. *)

val execute : ?hooks:hooks -> ?max_steps:int -> Program.flat -> State.t -> t
(** Convenience: create and run. *)

(** {1 Checkpointing} *)

type checkpoint

val checkpoint : t -> checkpoint
(** Snapshot registers/flags/PC and start journaling memory writes. *)

val restore : t -> checkpoint -> unit
val commit : t -> unit
(** Discard checkpoint tracking and stop journaling. *)

val set_index : t -> int -> unit
(** Force the next instruction index (wrong-path exploration). *)

val current_index : t -> int
